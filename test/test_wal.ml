(* Crash-safe serving.  Three families of contracts:

   - the WAL codec: records round-trip bit-exactly, and any single bit
     flip of a log image is either [Wal.Corrupt] or a reported torn
     tail — never a silently different (or silently complete) replay;

   - failure classification: a tail that simply stops early (the only
     artifact a crash can leave, since each record is one write) is
     truncated and reported, while bit flips, wrong magic, wrong
     version, and sequence gaps refuse recovery with [Wal.Corrupt];

   - crash–recover differential: killing the server after any k acked
     appends, at any snapshot cadence, for jobs 1 and 2 — including a
     crash between the snapshot rename and the log truncation, and a
     torn half-written record — recovers a server whose answers are
     bit-identical to one that never crashed, with exact loss
     accounting (acked appends survive, the unacked tail is counted). *)

open Legodb
open Test_util

let prop name ?(count = 30) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let tmp_dir () =
  let d = Filename.temp_file "legodb_wal" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let setup () =
  let doc = Lazy.force small_imdb_doc in
  let stats = Collector.collect doc in
  let ps = Init.all_inlined (Annotate.schema stats Imdb.Schema.schema) in
  let m = mapping_of ps in
  (doc, m)

let q_titles =
  Xq_parse.parse ~name:"titles"
    "FOR $v IN document(\"x\")/imdb/show WHERE $v/year = 1990 RETURN \
     $v/title, $v/year"

let q_actors =
  Xq_parse.parse ~name:"actors"
    "FOR $v IN document(\"x\")/imdb/actor RETURN $v/name"

let q_join =
  Xq_parse.parse ~name:"join"
    "FOR $i IN document(\"x\")/imdb $a in $i/actor, $m1 in $a/played RETURN \
     $a/name, $m1/title"

let queries = [ q_titles; q_actors; q_join ]
let answers s = List.map (fun q -> (Serve.query s q).Serve.rows) queries

(* ------------------------------------------------------------------ *)
(* fault injection                                                     *)
(* ------------------------------------------------------------------ *)

exception Crash

type fault_log = { mutable ops : (string * int) list (* newest first *) }

(* a counting fs: every write/fsync/rename is logged; from [crash_at]
   (1-based, counted across all three ops) onward every op raises
   [Crash] *before* doing anything — the process is "dead".  With
   [short_write_at], that write persists only half its bytes first —
   a torn record. *)
let faulty_fs ?(crash_at = max_int) ?(short_write_at = 0) () =
  let log = { ops = [] } in
  let n = ref 0 in
  let step name len =
    incr n;
    log.ops <- (name, len) :: log.ops;
    if !n >= crash_at then raise Crash
  in
  let fs =
    {
      Wire.write =
        (fun fd s ->
          if !n + 1 = short_write_at then begin
            step "write" (String.length s);
            ignore
              (Unix.write_substring fd s 0 (String.length s / 2) : int);
            raise Crash
          end
          else begin
            step "write" (String.length s);
            Wire.real_fs.Wire.write fd s
          end);
      fsync =
        (fun fd ->
          step "fsync" 0;
          Wire.real_fs.Wire.fsync fd);
      rename =
        (fun a b ->
          step "rename" 0;
          Wire.real_fs.Wire.rename a b);
    }
  in
  (log, fs)

(* ------------------------------------------------------------------ *)
(* codec generators                                                    *)
(* ------------------------------------------------------------------ *)

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return Rtype.V_null;
        map (fun n -> Rtype.V_int n) int;
        map
          (fun s -> Rtype.V_string s)
          (string_size ~gen:char (int_range 0 12));
      ])

(* tables of rows that share an arity, as shredding produces *)
let gen_record =
  QCheck2.Gen.(
    map
      (fun tables ->
        {
          Wal.seq = 1;
          rows =
            List.mapi
              (fun i rows ->
                (Printf.sprintf "T%d" i, List.map Array.of_list rows))
              tables;
        })
      (list_size (int_range 0 3)
         (bind (int_range 1 4) (fun arity ->
              list_size (int_range 0 5) (list_repeat arity gen_value)))))

(* a deterministic 2-record image for the damage tests *)
let wal_image ~seq0 =
  let r1 =
    {
      Wal.seq = seq0;
      rows = [ ("T", [ [| Rtype.V_int 1; Rtype.V_string "a\nb" |] ]) ];
    }
  in
  let r2 =
    {
      Wal.seq = seq0 + 1;
      rows = [ ("T", [ [| Rtype.V_null; Rtype.V_string "z" |] ]) ];
    }
  in
  ( "LEGODB-WAL 1\n" ^ Wal.encode_record r1 ^ Wal.encode_record r2,
    [ r1; r2 ] )

let flip_bit s pos bit =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.to_string b

let corrupts ?expect f =
  match f () with
  | _ -> false
  | exception Wal.Corrupt m -> (
      (not (String.contains m '\n'))
      && match expect with None -> true | Some sub -> contains m sub)
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* differential harness                                                *)
(* ------------------------------------------------------------------ *)

(* run [appends] acked appends at snapshot cadence [publish_every]
   against both an in-memory oracle and a durable server; "crash" the
   durable one (drop the handle; optionally [tear] extra garbage onto
   the log first), recover, and require: answers bit-identical to the
   oracle before and after a publish barrier, and exact loss
   accounting in the recovery report. *)
let crash_recover_case ~jobs ~publish_every ~appends ?tear () =
  let doc, m = setup () in
  let dir = tmp_dir () in
  let oracle = Serve.create ~jobs m (Shred.shred m doc) in
  let server =
    Serve.create ~jobs ~data_dir:dir m (Shred.shred m doc)
  in
  let published = ref 0 in
  for i = 1 to appends do
    Serve.append oracle doc;
    Serve.append server doc;
    if publish_every > 0 && i mod publish_every = 0 then begin
      Serve.publish oracle;
      Serve.publish server;
      incr published
    end
  done;
  (* SIGKILL equivalent: the handle is abandoned, only the files
     survive.  [tear] simulates dying midway through the next append's
     write. *)
  (match tear with
  | None -> ()
  | Some garbage ->
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (Wal.wal_file dir)
      in
      output_string oc garbage;
      close_out oc);
  let recovered, r = Serve.recover ~jobs ~dir () in
  let ctx = Printf.sprintf "jobs=%d every=%d k=%d" jobs publish_every appends in
  (* exact loss accounting: every acked append survived, nothing else *)
  check_int (ctx ^ ": recovered_seq") appends r.Serve.r_recovered_seq;
  check_int (ctx ^ ": snapshot_seq") (!published * publish_every)
    r.Serve.r_snapshot_seq;
  check_int (ctx ^ ": replayed")
    (appends - (!published * publish_every))
    r.Serve.r_replayed;
  check_int (ctx ^ ": pending matches oracle")
    (Serve.stats oracle).Serve.pending_appends
    (Serve.stats recovered).Serve.pending_appends;
  check_bool (ctx ^ ": torn iff garbage") (tear <> None)
    (r.Serve.r_torn <> None);
  (match tear with
  | Some g -> check_int (ctx ^ ": dropped bytes") (String.length g)
      r.Serve.r_dropped_bytes
  | None -> ());
  (* bit-identical answers: published state first, then the barrier
     surfaces the replayed pending appends on both sides *)
  check_bool (ctx ^ ": answers equal") true (answers oracle = answers recovered);
  Serve.publish oracle;
  Serve.publish recovered;
  check_bool (ctx ^ ": answers equal after publish") true
    (answers oracle = answers recovered);
  check_int (ctx ^ ": row totals")
    (Storage.total_rows (Serve.snapshot oracle))
    (Storage.total_rows (Serve.snapshot recovered));
  (* the recovered server is live: it takes appends durably *)
  Serve.append recovered doc;
  rm_rf dir

let suite =
  [
    case "crash–recover differential matrix" (fun () ->
        List.iter
          (fun jobs ->
            List.iter
              (fun publish_every ->
                for appends = 0 to 3 do
                  crash_recover_case ~jobs ~publish_every ~appends ()
                done)
              [ 0; 2 ])
          [ 1; 2 ]);
    case "torn half-written record is truncated, acked appends survive"
      (fun () ->
        (* a record torn at every interesting depth: mid-header-line,
           exactly at the payload boundary, mid-payload *)
        List.iter
          (fun garbage ->
            crash_recover_case ~jobs:1 ~publish_every:2 ~appends:3
              ~tear:garbage ())
          [ "R 12"; "R 00000000 500\n"; "R 00000000 500\nhalf of it" ]);
    case "crash between snapshot rename and log truncation" (fun () ->
        (* publish writes the snapshot, then truncates the log; dying
           between the two leaves already-snapshotted records behind.
           Simulate by saving the log before the publish and putting it
           back after — exactly the disk a crash there leaves. *)
        let doc, m = setup () in
        let dir = tmp_dir () in
        let oracle = Serve.create ~jobs:1 m (Shred.shred m doc) in
        let server = Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc) in
        for _ = 1 to 3 do
          Serve.append oracle doc;
          Serve.append server doc
        done;
        let saved = Wire.read_file (Wal.wal_file dir) in
        Serve.publish oracle;
        Serve.publish server;
        let oc = open_out_bin (Wal.wal_file dir) in
        output_string oc saved;
        close_out oc;
        let recovered, r = Serve.recover ~jobs:1 ~dir () in
        (* all three records predate the snapshot: skipped, not
           double-applied *)
        check_int "skipped" 3 r.Serve.r_skipped;
        check_int "replayed" 0 r.Serve.r_replayed;
        check_int "recovered_seq" 3 r.Serve.r_recovered_seq;
        check_bool "answers equal" true (answers oracle = answers recovered);
        check_int "row totals"
          (Storage.total_rows (Serve.snapshot oracle))
          (Storage.total_rows (Serve.snapshot recovered));
        rm_rf dir);
    case "recovery survives a crash before the log existed" (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let server = Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc) in
        let before = answers server in
        Sys.remove (Wal.wal_file dir);
        let recovered, r = Serve.recover ~jobs:1 ~dir () in
        check_int "nothing replayed" 0 r.Serve.r_replayed;
        check_bool "answers equal" true (before = answers recovered);
        rm_rf dir);
    case "WAL damage classes get distinct one-line errors" (fun () ->
        let img, originals = wal_image ~seq0:1 in
        (* clean replay first: the image is valid *)
        let rep = Wal.replay_string img in
        check_int "two records" 2 (List.length rep.Wal.records);
        check_bool "round trip" true
          (List.for_all2 Wal.record_equal originals rep.Wal.records);
        check_bool "wrong magic" true
          (corrupts ~expect:"magic" (fun () ->
               Wal.replay_string ("NOTADB-WAL 1\n" ^ "rest")));
        check_bool "wrong version" true
          (corrupts ~expect:"version" (fun () ->
               Wal.replay_string "LEGODB-WAL 9\nrest"));
        check_bool "bit flip in payload" true
          (corrupts ~expect:"checksum" (fun () ->
               Wal.replay_string (flip_bit img (String.length img - 3) 0)));
        check_bool "malformed record header" true
          (corrupts ~expect:"header" (fun () ->
               Wal.replay_string "LEGODB-WAL 1\nX 0 0\n"));
        (* a sequence gap is corruption, not a tail to shrug off *)
        let gapped, _ = wal_image ~seq0:1 in
        let r3 =
          Wal.encode_record { Wal.seq = 5; rows = [ ("T", []) ] }
        in
        check_bool "sequence gap" true
          (corrupts ~expect:"contiguous" (fun () ->
               Wal.replay_string (gapped ^ r3)));
        (* a torn *header* (crash during create) replays as empty *)
        let rep = Wal.replay_string "LEGODB-W" in
        check_bool "torn header" true (rep.Wal.torn <> None);
        check_int "no records" 0 (List.length rep.Wal.records));
    case "snapshot damage classes get distinct one-line errors" (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let _ = Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc) in
        let path = Wal.snapshot_file dir in
        let img = Wire.read_file path in
        let try_load img =
          let oc = open_out_bin path in
          output_string oc img;
          close_out oc;
          corrupts (fun () -> Serve.recover ~jobs:1 ~dir ())
        in
        check_bool "bit flip" true (try_load (flip_bit img 600 3));
        check_bool "truncation" true (try_load (String.sub img 0 500));
        check_bool "wrong magic" true
          (try_load ("NOTADB" ^ String.sub img 6 (String.length img - 6)));
        rm_rf dir);
    case "write_atomic is write, fsync, rename, fsync-dir — in order"
      (fun () ->
        let log, fs = faulty_fs () in
        let path = Filename.temp_file "legodb_wa" ".bin" in
        Wire.write_atomic ~fs ~path "payload";
        check_bool "op order" true
          (List.rev_map fst log.ops = [ "write"; "fsync"; "rename"; "fsync" ]);
        check_string "contents" "payload" (Wire.read_file path);
        check_bool "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
        Sys.remove path);
    case "unacked torn append is lost cleanly, server goes fail-stop"
      (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        (* creation does 2 log ops (header write+fsync) after the
           snapshot's 4: append k's write is op 4+2+2k-1.  Tear the
           second append's write halfway. *)
        let _, fs = faulty_fs ~short_write_at:9 () in
        let server =
          Serve.create ~jobs:1 ~data_dir:dir ~fs m (Shred.shred m doc)
        in
        Serve.append server doc;
        (match Serve.append server doc with
        | () -> Alcotest.fail "the torn append must raise"
        | exception Crash -> ());
        (* fail-stop: nothing may be acknowledged after a log hole *)
        (match Serve.append server doc with
        | () -> Alcotest.fail "fail-stop must refuse further appends"
        | exception Failure m ->
            check_bool "names fail-stop" true (contains m "fail-stop"));
        (* recovery: append 1 survives (it was acked), the torn second
           record is truncated and counted *)
        let recovered, r = Serve.recover ~jobs:1 ~dir () in
        check_int "acked append survives" 1 r.Serve.r_replayed;
        check_bool "torn tail reported" true (r.Serve.r_torn <> None);
        check_bool "bytes counted" true (r.Serve.r_dropped_bytes > 0);
        check_int "one pending" 1
          (Serve.stats recovered).Serve.pending_appends;
        rm_rf dir);
    case "create refuses a directory that already holds a store" (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let _ = Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc) in
        (match Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc) with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument m ->
            check_bool "points at recover" true (contains m "recover"));
        rm_rf dir);
    (* -------------------------------------------------------------- *)
    (* group commit                                                    *)
    (* -------------------------------------------------------------- *)
    case "stage buffers for free, flush is one write + one fsync" (fun () ->
        let log, fs = faulty_fs () in
        let path = Filename.temp_file "legodb_gc" ".wal" in
        let w = Wal.create ~fs ~next_seq:1 path in
        let ops0 = List.length log.ops in
        Wal.flush w;
        check_int "empty flush is free" ops0 (List.length log.ops);
        let rows1 = [ ("T", [ [| Rtype.V_int 1 |] ]) ] in
        let rows2 = [ ("T", [ [| Rtype.V_int 2 |] ]) ] in
        let s1 = Wal.stage w rows1 in
        let s2 = Wal.stage w rows2 in
        check_int "sequence numbers contiguous" (s1 + 1) s2;
        check_int "both staged" 2 (Wal.staged w);
        check_int "staging touches no disk" ops0 (List.length log.ops);
        Wal.flush w;
        check_int "one write + one fsync" (ops0 + 2) (List.length log.ops);
        (match log.ops with
        | ("fsync", _) :: ("write", _) :: _ -> ()
        | _ -> Alcotest.fail "flush must be write then fsync");
        check_int "group drained" 0 (Wal.staged w);
        let st = Wal.stats w in
        check_int "appends" 2 st.Wal.appends;
        check_int "fsyncs" 1 st.Wal.fsyncs;
        check_int "groups" 1 st.Wal.groups;
        check_int "max group" 2 st.Wal.max_group;
        (* singleton appends stay in the fsync-per-append byte format,
           and the grouped log replays with them seamlessly *)
        let _ = Wal.append w rows1 in
        Wal.close w;
        let rep = Wal.replay_file path in
        check_bool "no tear" true (rep.Wal.torn = None);
        check_int "three records" 3 (List.length rep.Wal.records);
        Sys.remove path);
    case "group codec: singleton byte-identical, bad groups rejected"
      (fun () ->
        let r1 = { Wal.seq = 1; rows = [ ("T", [ [| Rtype.V_int 7 |] ]) ] } in
        let r2 = { Wal.seq = 2; rows = [] } in
        check_string "singleton is an R record" (Wal.encode_record r1)
          (Wal.encode_group [ r1 ]);
        (match Wal.encode_group [] with
        | _ -> Alcotest.fail "empty group must be rejected"
        | exception Invalid_argument _ -> ());
        (match Wal.encode_group [ r1; { r2 with Wal.seq = 5 } ] with
        | _ -> Alcotest.fail "a gap inside a group must be rejected"
        | exception Invalid_argument _ -> ());
        let img = "LEGODB-WAL 1\n" ^ Wal.encode_group [ r1; r2 ] in
        let rep = Wal.replay_string img in
        check_bool "no tear" true (rep.Wal.torn = None);
        check_int "two members" 2 (List.length rep.Wal.records);
        check_bool "members equal" true
          (List.for_all2 Wal.record_equal [ r1; r2 ] rep.Wal.records));
    case "group damage classes get distinct one-line errors" (fun () ->
        let r1 =
          { Wal.seq = 1; rows = [ ("T", [ [| Rtype.V_string "x" |] ]) ] }
        in
        let g =
          [ { Wal.seq = 2; rows = [ ("T", []) ] }; { Wal.seq = 3; rows = [] } ]
        in
        let img =
          "LEGODB-WAL 1\n" ^ Wal.encode_record r1 ^ Wal.encode_group g
        in
        check_bool "bit flip in the group" true
          (corrupts ~expect:"checksum" (fun () ->
               Wal.replay_string (flip_bit img (String.length img - 3) 0)));
        (* a unit declaring fewer than two members is malformed, not a
           clever singleton *)
        let forged count =
          let b = Buffer.create 16 in
          Wire.w_int b 2;
          Wire.w_int b count;
          let p = Buffer.contents b in
          "LEGODB-WAL 1\n" ^ Wal.encode_record r1
          ^ Printf.sprintf "G %08lx %d\n%s\n" (Wire.crc32 p) (String.length p)
              p
        in
        check_bool "undersized group" true
          (corrupts ~expect:"group" (fun () -> Wal.replay_string (forged 1)));
        (* a group that does not extend the log contiguously is
           corruption, exactly like a gapped R record *)
        let gap = [ { Wal.seq = 7; rows = [] }; { Wal.seq = 8; rows = [] } ] in
        check_bool "gap before the group" true
          (corrupts ~expect:"contiguous" (fun () ->
               Wal.replay_string
                 ("LEGODB-WAL 1\n" ^ Wal.encode_record r1
                ^ Wal.encode_group gap)));
        (* a torn group truncates as a unit: the acked prefix survives,
           no member of the unit leaks through *)
        let rep = Wal.replay_string (String.sub img 0 (String.length img - 4)) in
        check_bool "torn" true (rep.Wal.torn <> None);
        check_int "only the acked record" 1 (List.length rep.Wal.records);
        check_bool "it is record 1" true
          (Wal.record_equal r1 (List.hd rep.Wal.records)));
    case "append_group: one fsync per group, replay matches per-append"
      (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let log, fs = faulty_fs () in
        let server =
          Serve.create ~jobs:1 ~data_dir:dir ~fs m (Shred.shred m doc)
        in
        let ops0 = List.length log.ops in
        check_bool "empty group is a no-op" true
          (Serve.append_group server [] = []);
        check_int "and costs nothing" ops0 (List.length log.ops);
        (match Serve.append_group server [ doc; doc; doc ] with
        | [ Ok (); Ok (); Ok () ] -> ()
        | _ -> Alcotest.fail "all three must be acked");
        check_int "one write + one fsync for the whole group" (ops0 + 2)
          (List.length log.ops);
        Serve.append server doc;
        let s = Serve.stats server in
        check_int "appends" 4 s.Serve.wal_appends;
        check_int "fsyncs" 2 s.Serve.wal_fsyncs;
        check_int "groups" 2 s.Serve.wal_groups;
        check_int "max group" 3 s.Serve.wal_max_group;
        (* a recovered grouped log answers bit-identically to a
           fsync-per-append oracle that saw the same documents *)
        let oracle = Serve.create ~jobs:1 m (Shred.shred m doc) in
        for _ = 1 to 4 do
          Serve.append oracle doc
        done;
        let recovered, r = Serve.recover ~jobs:1 ~dir () in
        check_int "all four replayed" 4 r.Serve.r_replayed;
        Serve.publish oracle;
        Serve.publish recovered;
        check_bool "bit-identical to fsync-per-append" true
          (answers oracle = answers recovered);
        rm_rf dir);
    case "a rejected document poisons only its slot in the group" (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let server =
          Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc)
        in
        (match Serve.append_group server [ doc; books_doc; doc ] with
        | [ Ok (); Error e; Ok () ] ->
            check_bool "names shredding" true (contains e "shredding")
        | _ -> Alcotest.fail "expected ok, error, ok");
        check_int "two pending" 2 (Serve.stats server).Serve.pending_appends;
        (* the whole group — the rejected document logged its partial
           rows, as single appends do — replays without error *)
        let _, r = Serve.recover ~jobs:1 ~dir () in
        check_int "three records" 3 r.Serve.r_replayed;
        rm_rf dir);
    case "group crash matrix: before write, torn write, at fsync, committed"
      (fun () ->
        (* op numbering after creation's 6 (snapshot write_atomic 4 +
           log header write/fsync): the acked single append is ops 7–8,
           the group's write is op 9 and its fsync op 10 *)
        let scenario ~name ~crash_at ~short_write_at ~expect_seq ~expect_torn
            () =
          let doc, m = setup () in
          let dir = tmp_dir () in
          let _, fs = faulty_fs ~crash_at ~short_write_at () in
          let server =
            Serve.create ~jobs:1 ~data_dir:dir ~fs m (Shred.shred m doc)
          in
          Serve.append server doc;
          let crashed =
            match Serve.append_group server [ doc; doc; doc ] with
            | results ->
                List.iter
                  (function
                    | Ok () -> ()
                    | Error e -> Alcotest.failf "%s: rejected: %s" name e)
                  results;
                false
            | exception Crash -> true
          in
          check_bool
            (name ^ ": crashed iff a fault was injected")
            (crash_at <> max_int || short_write_at <> 0)
            crashed;
          (* none of a crashed group was acknowledged, and the server
             goes fail-stop — no ack after a possible log hole *)
          if crashed then (
            match Serve.append server doc with
            | () -> Alcotest.fail (name ^ ": fail-stop must refuse appends")
            | exception Failure m ->
                check_bool (name ^ ": names fail-stop") true
                  (contains m "fail-stop"));
          let recovered, r = Serve.recover ~jobs:1 ~dir () in
          check_int (name ^ ": recovered_seq") expect_seq
            r.Serve.r_recovered_seq;
          check_int (name ^ ": replayed") expect_seq r.Serve.r_replayed;
          check_bool (name ^ ": torn iff the write tore") expect_torn
            (r.Serve.r_torn <> None);
          check_int (name ^ ": pending") expect_seq
            (Serve.stats recovered).Serve.pending_appends;
          (* the recovered server is live: it takes appends durably *)
          Serve.append recovered doc;
          rm_rf dir
        in
        (* the group never reached the disk: only the acked single
           append survives, and the log is clean (no torn tail) *)
        scenario ~name:"before write" ~crash_at:9 ~short_write_at:0
          ~expect_seq:1 ~expect_torn:false ();
        (* the group tore mid-write: truncated as a unit — no member
           of the unacknowledged group ever replays *)
        scenario ~name:"torn write" ~crash_at:max_int ~short_write_at:9
          ~expect_seq:1 ~expect_torn:true ();
        (* the write completed, the fsync crashed: the group was never
           acked, but it is intact on disk — replaying it is allowed
           (the invariant is acked ⇒ durable, not its converse) *)
        scenario ~name:"at fsync" ~crash_at:10 ~short_write_at:0
          ~expect_seq:4 ~expect_torn:false ();
        (* no fault: the whole group is acked and survives *)
        scenario ~name:"committed" ~crash_at:max_int ~short_write_at:0
          ~expect_seq:4 ~expect_torn:false ());
  ]

(* ------------------------------------------------------------------ *)
(* properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  prop "WAL record codec round-trips arbitrary rows bit-exactly" ~count:50
    gen_record (fun r ->
      let rep = Wal.replay_string ("LEGODB-WAL 1\n" ^ Wal.encode_record r) in
      rep.Wal.torn = None
      && List.length rep.Wal.records = 1
      && Wal.record_equal r (List.hd rep.Wal.records))

let prop_bit_flip =
  prop "any single bit flip never silently replays the original" ~count:120
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 7))
    (fun (pos, bit) ->
      let img, originals = wal_image ~seq0:1 in
      let flipped = flip_bit img (pos mod String.length img) bit in
      match Wal.replay_string flipped with
      | exception Wal.Corrupt m -> not (String.contains m '\n')
      | rep ->
          (* tolerated only as a *reported* torn tail with records
             missing — flipping a bit must never masquerade as the
             intact log *)
          rep.Wal.torn <> None
          && List.length rep.Wal.records < List.length originals
          && List.for_all2 Wal.record_equal rep.Wal.records
               (List.filteri
                  (fun i _ -> i < List.length rep.Wal.records)
                  originals))

let prop_group_roundtrip =
  prop "group commit units round-trip arbitrary members bit-exactly"
    ~count:50
    QCheck2.Gen.(list_size (int_range 2 5) gen_record)
    (fun rs ->
      let group = List.mapi (fun i r -> { r with Wal.seq = 1 + i }) rs in
      let rep =
        Wal.replay_string ("LEGODB-WAL 1\n" ^ Wal.encode_group group)
      in
      rep.Wal.torn = None
      && List.length rep.Wal.records = List.length group
      && List.for_all2 Wal.record_equal group rep.Wal.records)

let prop_group_bit_flip =
  prop "any single bit flip of a grouped log never silently replays it"
    ~count:120
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 7))
    (fun (pos, bit) ->
      let r1 = { Wal.seq = 1; rows = [ ("T", [ [| Rtype.V_int 1 |] ]) ] } in
      let group =
        [
          { Wal.seq = 2; rows = [ ("T", [ [| Rtype.V_string "a\nb" |] ]) ] };
          { Wal.seq = 3; rows = [] };
        ]
      in
      let originals = r1 :: group in
      let img =
        "LEGODB-WAL 1\n" ^ Wal.encode_record r1 ^ Wal.encode_group group
      in
      let flipped = flip_bit img (pos mod String.length img) bit in
      match Wal.replay_string flipped with
      | exception Wal.Corrupt m -> not (String.contains m '\n')
      | rep ->
          (* tolerated only as a *reported* torn tail that drops whole
             commit units — a flip must never split a group or
             masquerade as the intact log *)
          rep.Wal.torn <> None
          && List.length rep.Wal.records < List.length originals
          && List.for_all2 Wal.record_equal rep.Wal.records
               (List.filteri
                  (fun i _ -> i < List.length rep.Wal.records)
                  originals))

let props =
  [ prop_roundtrip; prop_bit_flip; prop_group_roundtrip; prop_group_bit_flip ]
