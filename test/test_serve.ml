(* The query server: plan cache, batched parallel reads, snapshot
   lifecycle, and the frozen-snapshot isolation property. *)

open Legodb
open Test_util

(* a small served corpus: the default synthetic IMDB document under
   the all-inlined configuration *)
let setup () =
  let doc = Lazy.force small_imdb_doc in
  let stats = Collector.collect doc in
  let ps = Init.all_inlined (Annotate.schema stats Imdb.Schema.schema) in
  let m = mapping_of ps in
  (doc, m, Shred.shred m doc)

let q_titles =
  Xq_parse.parse ~name:"titles"
    "FOR $v IN document(\"x\")/imdb/show WHERE $v/year = 1990 RETURN \
     $v/title, $v/year"

let q_actors =
  Xq_parse.parse ~name:"actors"
    "FOR $v IN document(\"x\")/imdb/actor RETURN $v/name"

let q_join =
  Xq_parse.parse ~name:"join"
    "FOR $i IN document(\"x\")/imdb $a in $i/actor, $m1 in $a/played RETURN \
     $a/name, $m1/title"

let q_bad =
  Xq_parse.parse ~name:"bad" "FOR $v in imdb/nothing RETURN $v"

let suite =
  [
    case "repeated statement hits the plan cache, reply identical" (fun () ->
        let _, m, db = setup () in
        let s = Serve.create ~jobs:2 m db in
        let r1 = Serve.query s q_titles in
        check_bool "first is a miss" false r1.Serve.cached;
        let r2 = Serve.query s q_titles in
        check_bool "second is a hit" true r2.Serve.cached;
        check_bool "identical rows" true (r1.Serve.rows = r2.Serve.rows);
        (* statement identity is structural: a renamed copy still hits *)
        let renamed = { q_titles with Xq_ast.name = "other_name" } in
        check_bool "renamed query hits" true
          (Serve.query s renamed).Serve.cached;
        let st = Serve.stats s in
        check_int "one compilation" 1 st.Serve.cache_misses;
        check_int "two hits" 2 st.Serve.cache_hits);
    case "run_batch equals sequential queries" (fun () ->
        let _, m, db = setup () in
        let s = Serve.create ~jobs:4 m db in
        let reqs =
          Array.init 24 (fun i ->
              [| q_titles; q_actors; q_join |].(i mod 3))
        in
        let sequential =
          Array.map (fun q -> (Serve.query s q).Serve.rows) reqs
        in
        let batched = Serve.run_batch s reqs in
        Array.iteri
          (fun i r ->
            match r with
            | Ok (r : Serve.reply) ->
                check_bool
                  (Printf.sprintf "request %d identical" i)
                  true
                  (r.Serve.rows = sequential.(i))
            | Error e -> Alcotest.failf "request %d failed: %s" i e)
          batched);
    case "untranslatable request is an Error, batch survives" (fun () ->
        let _, m, db = setup () in
        let s = Serve.create ~jobs:2 m db in
        let batched = Serve.run_batch s [| q_titles; q_bad; q_actors |] in
        (match batched.(1) with
        | Error e -> check_bool "message" true (contains e "untranslatable")
        | Ok _ -> Alcotest.fail "expected an error for the bad request");
        (match (batched.(0), batched.(2)) with
        | Ok _, Ok _ -> ()
        | _ -> Alcotest.fail "good requests must still be answered");
        (* the server keeps serving afterwards *)
        check_bool "still serving" true
          ((Serve.query s q_titles).Serve.rows <> []
          || (Serve.query s q_actors).Serve.rows <> []));
    case "append is invisible until publish" (fun () ->
        let doc, m, db = setup () in
        let s = Serve.create ~jobs:2 m db in
        let before_rows = Storage.total_rows (Serve.snapshot s) in
        let before = (Serve.query s q_actors).Serve.rows in
        Serve.append s doc;
        check_int "snapshot rows unchanged" before_rows
          (Storage.total_rows (Serve.snapshot s));
        check_bool "answers unchanged" true
          ((Serve.query s q_actors).Serve.rows = before);
        check_int "pending" 1 (Serve.stats s).Serve.pending_appends;
        Serve.publish s;
        let st = Serve.stats s in
        check_int "published" 1 st.Serve.snapshots_published;
        check_int "no pending" 0 st.Serve.pending_appends;
        check_bool "snapshot grew" true
          (Storage.total_rows (Serve.snapshot s) > before_rows);
        check_int "answers doubled" (2 * List.length before)
          (List.length (Serve.query s q_actors).Serve.rows));
    case "snapshot is frozen, working store stays private" (fun () ->
        let _, m, db = setup () in
        let s = Serve.create m db in
        check_bool "snapshot frozen" true
          (Storage.is_frozen (Serve.snapshot s));
        (* a frozen store cannot be served: the working store must be
           able to take appends *)
        match Serve.create m (Serve.snapshot s) with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "per-request timeout degrades to an Error slot" (fun () ->
        let _, m, db = setup () in
        (* an injected clock that leaps 10s per reading: every request
           blows any small budget at its first block boundary *)
        let now = ref 0. in
        let clock () =
          now := !now +. 10.;
          !now
        in
        let s = Serve.create ~jobs:1 ~clock m db in
        let replies =
          Serve.run_batch ~timeout_ms:5 s [| q_titles; q_actors |]
        in
        Array.iter
          (function
            | Error e -> check_bool "names timeout" true (contains e "timeout")
            | Ok _ -> Alcotest.fail "expected a timeout")
          replies;
        (* a generous budget answers normally on the same server *)
        (match (Serve.run_batch ~timeout_ms:1_000_000 s [| q_titles |]).(0) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected error: %s" e);
        (* no budget at all: unchanged behavior *)
        match (Serve.run_batch s [| q_titles |]).(0) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected error: %s" e);
    case "summarize percentiles (nearest rank)" (fun () ->
        let lat = Array.init 100 (fun i -> float_of_int (i + 1) /. 1000.) in
        let s = Serve.summarize ~wall_s:0.5 lat in
        check_int "n" 100 s.Serve.n;
        check_bool "qps" true (Float.equal s.Serve.qps 200.);
        check_bool "p50" true (Float.equal s.Serve.p50_ms 50.);
        check_bool "p95" true (Float.equal s.Serve.p95_ms 95.);
        check_bool "p99" true (Float.equal s.Serve.p99_ms 99.);
        let empty = Serve.summarize ~wall_s:0. [||] in
        check_int "empty n" 0 empty.Serve.n);
  ]

(* ------------------------------------------------------------------ *)
(* property: frozen-snapshot isolation under concurrency               *)
(* ------------------------------------------------------------------ *)

(* Readers running concurrently with a writer that appends toward the
   next snapshot must see answers bit-identical to the quiescent
   baseline: appends only become visible at the publish barrier. *)
let prop_frozen_readers =
  QCheck2.Test.make ~name:"concurrent readers see the frozen snapshot"
    ~count:10
    QCheck2.Gen.(list_size (int_range 1 12) (int_range 0 2))
    (fun picks ->
      let doc, m, db = setup () in
      let s = Serve.create ~jobs:4 m db in
      let pool = [| q_titles; q_actors; q_join |] in
      let baseline =
        List.map (fun i -> (Serve.query s pool.(i)).Serve.rows) picks
      in
      let reader i () = (Serve.query s pool.(i)).Serve.rows in
      let writer () =
        Serve.append s doc;
        []
      in
      let results =
        Par.run_list (writer :: List.map reader picks)
      in
      let read_back = List.tl results in
      let isolated = List.for_all2 (fun b r -> b = r) baseline read_back in
      (* the pending append surfaces exactly at the barrier *)
      let before = Storage.total_rows (Serve.snapshot s) in
      Serve.publish s;
      isolated && Storage.total_rows (Serve.snapshot s) > before)

let props = [ QCheck_alcotest.to_alcotest prop_frozen_readers ]
