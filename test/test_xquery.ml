open Legodb
open Test_util

let parse = Xq_parse.parse ~name:"t"

let suite =
  [
    case "simple FLWR" (fun () ->
        let q =
          parse
            {| FOR $v IN document("imdbdata")/imdb/show
               WHERE $v/title = c1
               RETURN $v/title, $v/year |}
        in
        check_int "bindings" 1 (List.length q.Xq_ast.body.bindings);
        check_int "preds" 1 (List.length q.Xq_ast.body.where);
        check_int "returns" 2 (List.length q.Xq_ast.body.return);
        match q.Xq_ast.body.bindings with
        | [ ("v", Xq_ast.Doc [ "imdb"; "show" ]) ] -> ()
        | _ -> Alcotest.fail "unexpected binding");
    case "bare document path" (fun () ->
        let q = parse "FOR $v in imdb/show RETURN $v" in
        match q.Xq_ast.body.bindings with
        | [ ("v", Xq_ast.Doc [ "imdb"; "show" ]) ] -> ()
        | _ -> Alcotest.fail "unexpected binding");
    case "variable-anchored binding" (fun () ->
        let q = parse "FOR $v in imdb/show $e IN $v/episodes RETURN $e" in
        match q.Xq_ast.body.bindings with
        | [ _; ("e", Xq_ast.Var_path ("v", [ "episodes" ])) ] -> ()
        | _ -> Alcotest.fail "unexpected bindings");
    case "reversed binding form" (fun () ->
        let q = parse "FOR $v in imdb/show RETURN $v/title FOR $v/episodes $e RETURN $e/name" in
        match q.Xq_ast.body.return with
        | [ Xq_ast.R_path _; Xq_ast.R_nested f ] -> (
            match f.Xq_ast.bindings with
            | [ ("e", Xq_ast.Var_path ("v", [ "episodes" ])) ] -> ()
            | _ -> Alcotest.fail "bad nested binding")
        | _ -> Alcotest.fail "bad returns");
    case "integer and symbolic constants" (fun () ->
        let q = parse "FOR $v in imdb/show WHERE $v/year = 1999 AND $v/title = c2 RETURN $v" in
        match q.Xq_ast.body.where with
        | [ { right = Xq_ast.O_const (Xq_ast.C_int 1999); _ };
            { right = Xq_ast.O_const (Xq_ast.C_string "c2"); _ } ] -> ()
        | _ -> Alcotest.fail "bad constants");
    case "numbers with grouping commas" (fun () ->
        let q = parse "FOR $v in imdb/show WHERE $v/box_office = 1,234,567 RETURN $v" in
        match q.Xq_ast.body.where with
        | [ { right = Xq_ast.O_const (Xq_ast.C_int 1234567); _ } ] -> ()
        | _ -> Alcotest.fail "comma number not parsed");
    case "path-to-path predicate" (fun () ->
        let q =
          parse
            {| FOR $i in imdb $a in $i/actor, $d in $i/director
               WHERE $a/name = $d/name RETURN $a/name |}
        in
        check_int "three bindings" 3 (List.length q.Xq_ast.body.bindings);
        match q.Xq_ast.body.where with
        | [ { left = ("a", [ "name" ]); right = Xq_ast.O_path ("d", [ "name" ]) } ] -> ()
        | _ -> Alcotest.fail "bad predicate");
    case "element constructor in return" (fun () ->
        let q = parse "FOR $v in imdb/actor RETURN <result> $v/name $v/biography </result>" in
        match q.Xq_ast.body.return with
        | [ Xq_ast.R_elem ("result", [ _; _ ]) ] -> ()
        | _ -> Alcotest.fail "bad constructor");
    case "nested FLWR with lowercase keywords" (fun () ->
        let q =
          parse
            {| for $v in imdb/actor
               return <result> $v/name
                 for $v/played $p where $p/character = c1
                 return $p/order_of_appearance
               </result> |}
        in
        match q.Xq_ast.body.return with
        | [ Xq_ast.R_elem (_, [ _; Xq_ast.R_nested f ]) ] ->
            check_int "nested pred" 1 (List.length f.Xq_ast.where)
        | _ -> Alcotest.fail "bad nesting");
    case "comments ignored" (fun () ->
        let q = parse "(: hi :) FOR $v in imdb/show (: there :) RETURN $v" in
        check_int "binding" 1 (List.length q.Xq_ast.body.bindings));
    case "all appendix queries parse and check" (fun () ->
        List.iteri
          (fun i q ->
            match Xq_ast.check q with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "Q%d: %s" (i + 1) (String.concat "; " es))
          Imdb.Queries.all;
        check_int "twenty" 20 (List.length Imdb.Queries.all));
    case "figure 5 queries parse" (fun () ->
        for i = 1 to 4 do
          match Xq_ast.check (Imdb.Queries.fig5 i) with
          | Ok () -> ()
          | Error es -> Alcotest.failf "fig5 %d: %s" i (String.concat "; " es)
        done);
    case "check rejects unbound variables" (fun () ->
        let q = parse "FOR $v in imdb/show RETURN $w/title" in
        check_bool "error" true (Result.is_error (Xq_ast.check q)));
    case "check rejects duplicate bindings" (fun () ->
        let q = parse "FOR $v in imdb/show $v in imdb/actor RETURN $v" in
        check_bool "error" true (Result.is_error (Xq_ast.check q)));
    case "parse errors carry positions" (fun () ->
        (match parse "FOR v IN x RETURN $v" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_parse.Parse_error { position; _ } ->
            check_bool "position sane" true (position >= 0)));
    case "trailing tokens rejected" (fun () ->
        match parse "FOR $v in imdb/show RETURN $v extra garbage (" with
        | _ -> Alcotest.fail "expected error"
        | exception Xq_parse.Parse_error _ -> ());
    case "workload normalization" (fun () ->
        let w = Workload.of_queries Imdb.Queries.lookup_queries in
        check_bool "sums to one" true (abs_float (Workload.total_weight w -. 1.) < 1e-9));
    case "workload mix" (fun () ->
        let w = Workload.mix 0.25 Imdb.Workloads.lookup Imdb.Workloads.publish in
        check_bool "sums to one" true (abs_float (Workload.total_weight w -. 1.) < 1e-9);
        check_int "all queries" 8 (List.length (Workload.queries w)));
    case "reference evaluator: books lookups" (fun () ->
        let q =
          parse {| FOR $b IN document("x")/store/book WHERE $b/isbn = 222 RETURN $b/title |}
        in
        check_int "one book" 1 (Xq_eval.count_bindings books_doc q);
        match Xq_eval.eval_strings books_doc q with
        | [ [ "Database Systems" ] ] -> ()
        | _ -> Alcotest.fail "bad eval");
    case "reference evaluator: joins" (fun () ->
        let q =
          parse
            {| FOR $b IN document("x")/store/book $a IN $b/author
               RETURN $a/name |}
        in
        check_int "four author bindings" 4 (Xq_eval.count_bindings books_doc q));
    case "pp/parse round trip: every IMDB query" (fun () ->
        (* [legodb query --connect] replays workloads as pp-printed
           text, so every query the workloads can name must survive
           print-then-reparse with its body intact — Q9/Q11/Q13's
           parenthesized nested FLWRs once did not *)
        List.iter
          (fun (q : Xq_ast.t) ->
            let text = Format.asprintf "%a" Xq_ast.pp q in
            match Xq_parse.parse ~name:q.Xq_ast.name text with
            | q' ->
                check_bool
                  (Printf.sprintf "%s body intact" q.Xq_ast.name)
                  true
                  (q'.Xq_ast.body = q.Xq_ast.body)
            | exception Xq_parse.Parse_error { position; message } ->
                Alcotest.failf "%s does not reparse (offset %d: %s)"
                  q.Xq_ast.name position message)
          Imdb.Queries.all);
    case "reference evaluator: existential predicate" (fun () ->
        let q =
          parse
            {| FOR $b IN document("x")/store/book
               WHERE $b/author/name = Ullman
               RETURN $b/title |}
        in
        check_int "one match" 1 (Xq_eval.count_bindings books_doc q));
  ]
