open Legodb
open Test_util

let col ?(nullable = false) ?(distinct = 10.) ?(null_frac = 0.) ?(width = 8.)
    name ctype =
  {
    Rschema.cname = name;
    ctype;
    nullable;
    stats =
      { Rschema.distinct; null_frac; v_min = None; v_max = None; avg_width = width };
  }

let people =
  {
    Rschema.tname = "People";
    key = "People_id";
    columns =
      [
        col "People_id" Rtype.R_int ~width:4. ~distinct:100.;
        col "name" (Rtype.R_string (Some 20)) ~width:20. ~distinct:100.;
        col "age" Rtype.R_int ~width:4. ~distinct:50.;
      ];
    fks = [];
    indexed = [ "People_id" ];
    card = 100.;
  }

let pets =
  {
    Rschema.tname = "Pets";
    key = "Pets_id";
    columns =
      [
        col "Pets_id" Rtype.R_int ~width:4. ~distinct:300.;
        col "species" (Rtype.R_string (Some 10)) ~width:10. ~distinct:5.;
        col "parent_People" Rtype.R_int ~width:4. ~distinct:100.;
      ];
    fks = [ ("parent_People", "People") ];
    indexed = [ "Pets_id"; "parent_People" ];
    card = 300.;
  }

let catalog = { Rschema.tables = [ people; pets ] }

let fill_db () =
  let db = Storage.create catalog in
  for i = 0 to 99 do
    Storage.insert db "People"
      [|
        Rtype.V_int i;
        Rtype.V_string (Printf.sprintf "name%02d" i);
        Rtype.V_int (20 + (i mod 50));
      |]
  done;
  for i = 0 to 299 do
    Storage.insert db "Pets"
      [|
        Rtype.V_int i;
        Rtype.V_string (if i mod 2 = 0 then "cat" else "dog");
        Rtype.V_int (i mod 100);
      |]
  done;
  db

let suite =
  [
    case "rtype widths" (fun () ->
        check_int "int" 4 (Rtype.width Rtype.R_int);
        check_int "char" 50 (Rtype.width (Rtype.R_string (Some 50)));
        check_int "string" Rtype.default_string_width
          (Rtype.width (Rtype.R_string None)));
    case "value compare total order" (fun () ->
        check_bool "null smallest" true
          (Rtype.compare_value Rtype.V_null (Rtype.V_int 0) < 0);
        check_bool "ints" true (Rtype.compare_value (Rtype.V_int 1) (Rtype.V_int 2) < 0);
        check_bool "strings" true
          (Rtype.compare_value (Rtype.V_string "a") (Rtype.V_string "b") < 0));
    case "sql literal escaping" (fun () ->
        check_string "quoted" "'it''s'" (Rtype.value_to_sql (Rtype.V_string "it's")));
    case "catalog validates" (fun () ->
        check_bool "ok" true (Result.is_ok (Rschema.validate catalog)));
    case "catalog rejects bad fk" (fun () ->
        let bad = { Rschema.tables = [ { pets with fks = [ ("nope", "People") ] } ] } in
        check_bool "error" true (Result.is_error (Rschema.validate bad)));
    case "catalog rejects duplicate columns" (fun () ->
        let bad =
          { Rschema.tables = [ { people with columns = people.columns @ [ col "age" Rtype.R_int ] } ] }
        in
        check_bool "error" true (Result.is_error (Rschema.validate bad)));
    case "row width sums columns" (fun () ->
        check_bool "28" true (abs_float (Rschema.row_width people -. 28.) < 1e-9));
    case "add_indexes" (fun () ->
        let cat = Rschema.add_indexes catalog [ ("People", "name"); ("People", "ghost") ] in
        check_bool "name indexed" true (Rschema.has_index (Rschema.table cat "People") "name");
        check_bool "ghost ignored" false
          (Rschema.has_index (Rschema.table cat "People") "ghost"));
    case "ddl contains keys and references" (fun () ->
        let ddl = Sql.ddl catalog in
        check_bool "pk" true (contains ddl "PRIMARY KEY");
        check_bool "fk" true (contains ddl "REFERENCES People(People_id)");
        check_bool "index" true (contains ddl "CREATE INDEX idx_Pets_parent_People"));
    case "sql select printing" (fun () ->
        let s =
          Sql.Select
            {
              Sql.proj = [ Sql.col "p" "name" ];
              from = [ { Sql.table = "People"; alias = "p" } ];
              where = [ Sql.eq (Sql.Col (Sql.col "p" "age")) (Sql.Int 30) ];
            }
        in
        let str = Sql.to_string s in
        check_bool "select" true (contains str "SELECT p.name");
        check_bool "where" true (contains str "WHERE p.age = 30"));
    case "storage insert and scan" (fun () ->
        let db = fill_db () in
        check_int "people" 100 (Storage.row_count db "People");
        check_int "pets" 300 (Storage.row_count db "Pets");
        check_int "total" 400 (Storage.total_rows db);
        check_int "scan" 100 (Seq.length (Storage.scan db "People")));
    case "storage arity check" (fun () ->
        let db = fill_db () in
        match Storage.insert db "People" [| Rtype.V_int 1 |] with
        | () -> Alcotest.fail "expected arity error"
        | exception Invalid_argument _ -> ());
    case "indexed lookup" (fun () ->
        let db = fill_db () in
        let rows = Storage.lookup db ~table:"Pets" ~column:"parent_People" (Rtype.V_int 5) in
        check_int "three pets" 3 (List.length rows));
    case "unindexed lookup falls back to scan" (fun () ->
        let db = fill_db () in
        let rows = Storage.lookup db ~table:"Pets" ~column:"species" (Rtype.V_string "cat") in
        check_int "cats" 150 (List.length rows));
    case "column positions" (fun () ->
        let db = fill_db () in
        check_int "key first" 0 (Storage.column_position db ~table:"People" ~column:"People_id");
        check_int "age third" 2 (Storage.column_position db ~table:"People" ~column:"age"));
    case "refresh_stats recomputes" (fun () ->
        let db = fill_db () in
        let db = Storage.refresh_stats db in
        let tbl = Rschema.table (Storage.catalog db) "Pets" in
        check_bool "card" true (tbl.Rschema.card = 300.);
        let species = Rschema.column tbl "species" in
        check_bool "distinct 2" true (species.Rschema.stats.distinct = 2.);
        let age = Rschema.column (Rschema.table (Storage.catalog db) "People") "age" in
        check_bool "min" true (age.Rschema.stats.v_min = Some 20);
        check_bool "max" true (age.Rschema.stats.v_max = Some 69));
    (* SQL NULL semantics: a NULL key matches nothing, on every lookup
       path, exactly as the executor's join methods already assume *)
    case "null probe matches nothing (indexed path)" (fun () ->
        let db = fill_db () in
        Storage.insert db "Pets"
          [| Rtype.V_int 300; Rtype.V_string "cat"; Rtype.V_null |];
        check_int "null probe" 0
          (List.length
             (Storage.lookup db ~table:"Pets" ~column:"parent_People"
                Rtype.V_null));
        check_int "null key probe" 0
          (List.length
             (Storage.lookup db ~table:"Pets" ~column:"Pets_id" Rtype.V_null)));
    case "null probe matches nothing (scan path)" (fun () ->
        let db = fill_db () in
        Storage.insert db "Pets"
          [| Rtype.V_int 300; Rtype.V_null; Rtype.V_int 0 |];
        check_int "null probe" 0
          (List.length
             (Storage.lookup db ~table:"Pets" ~column:"species" Rtype.V_null));
        (* and the null row is not matched by a real probe either *)
        check_int "cats unchanged" 150
          (List.length
             (Storage.lookup db ~table:"Pets" ~column:"species"
                (Rtype.V_string "cat"))));
    case "insert does not index nulls" (fun () ->
        let db = fill_db () in
        Storage.insert db "Pets"
          [| Rtype.V_int 300; Rtype.V_string "cat"; Rtype.V_null |];
        check_int "row stored" 301 (Storage.row_count db "Pets");
        check_int "real probe unchanged" 3
          (List.length
             (Storage.lookup db ~table:"Pets" ~column:"parent_People"
                (Rtype.V_int 5))));
    case "refresh_stats returns an independent store" (fun () ->
        let db = fill_db () in
        let db2 = Storage.refresh_stats db in
        (* writes through the old handle must be invisible to the new *)
        Storage.insert db "Pets"
          [| Rtype.V_int 300; Rtype.V_string "cat"; Rtype.V_int 5 |];
        check_int "rows independent" 300 (Storage.row_count db2 "Pets");
        check_int "index independent" 3
          (List.length
             (Storage.lookup db2 ~table:"Pets" ~column:"parent_People"
                (Rtype.V_int 5)));
        (* and vice versa *)
        Storage.insert db2 "Pets"
          [| Rtype.V_int 301; Rtype.V_string "dog"; Rtype.V_int 7 |];
        check_int "rows independent (reverse)" 301 (Storage.row_count db "Pets");
        check_int "index independent (reverse)" 4
          (List.length
             (Storage.lookup db ~table:"Pets" ~column:"parent_People"
                (Rtype.V_int 5))));
    case "freeze: immutable, independent snapshot" (fun () ->
        let db = fill_db () in
        let snap = Storage.freeze db in
        check_bool "frozen" true (Storage.is_frozen snap);
        check_bool "original not frozen" false (Storage.is_frozen db);
        (match
           Storage.insert snap "Pets"
             [| Rtype.V_int 300; Rtype.V_string "cat"; Rtype.V_int 5 |]
         with
        | () -> Alcotest.fail "insert into a frozen snapshot must raise"
        | exception Invalid_argument _ -> ());
        Storage.insert db "Pets"
          [| Rtype.V_int 300; Rtype.V_string "cat"; Rtype.V_int 5 |];
        check_int "snapshot rows stable" 300 (Storage.row_count snap "Pets");
        check_int "snapshot index stable" 3
          (List.length
             (Storage.lookup snap ~table:"Pets" ~column:"parent_People"
                (Rtype.V_int 5))));
    case "vec growth leaves no stale rows in spare slots" (fun () ->
        let v = Storage.Vec.create () in
        for i = 0 to 16 do
          Storage.Vec.push v [| Rtype.V_int i |]
        done;
        (* the push that grew the array must not have parked the pushed
           element in the spare capacity: spare slots hold the
           already-live element 0, so popping/truncating can never keep
           dead rows reachable *)
        check_bool "grew" true (Storage.Vec.capacity v > Storage.Vec.length v);
        for j = Storage.Vec.length v to Storage.Vec.capacity v - 1 do
          check_bool
            (Printf.sprintf "spare slot %d holds element 0" j)
            true
            (v.Storage.Vec.data.(j) == v.Storage.Vec.data.(0))
        done;
        (* and the live prefix is intact *)
        for i = 0 to 16 do
          check_bool
            (Printf.sprintf "element %d" i)
            true
            (Storage.Vec.get v i = [| Rtype.V_int i |])
        done);
    case "vec copy is exact-size and independent" (fun () ->
        let v = Storage.Vec.create () in
        for i = 0 to 4 do
          Storage.Vec.push v i
        done;
        let c = Storage.Vec.copy v in
        check_int "len" 5 (Storage.Vec.length c);
        check_int "no spare" 5 (Storage.Vec.capacity c);
        Storage.Vec.push v 5;
        check_int "copy unaffected" 5 (Storage.Vec.length c));
  ]
