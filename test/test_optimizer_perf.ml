(* Differential tests holding the mask-indexed optimizer bit-identical
   to the frozen reference implementation (Optimizer_reference): same
   best plan, same row estimate, same cost — to the last float bit —
   on random catalogs and blocks, with and without the shared
   common-subexpression cache. *)

open Legodb

let params = Cost.default_params

let bits = Int64.bits_of_float

let same_float what a b =
  Alcotest.(check int64) what (bits a) (bits b)

let same_cost what (a : Cost.t) (b : Cost.t) =
  same_float (what ^ ".seeks") a.Cost.seeks b.Cost.seeks;
  same_float (what ^ ".pages_read") a.Cost.pages_read b.Cost.pages_read;
  same_float (what ^ ".pages_written") a.Cost.pages_written b.Cost.pages_written;
  same_float (what ^ ".cpu") a.Cost.cpu b.Cost.cpu

let same_result what (fast : Optimizer.result) (ref_ : Optimizer_reference.result)
    =
  if fast.Optimizer.plan <> ref_.Optimizer_reference.plan then
    Alcotest.failf "%s: plans differ:@.fast %a@.ref  %a" what Physical.pp
      fast.Optimizer.plan Physical.pp ref_.Optimizer_reference.plan;
  same_float (what ^ ".rows") fast.Optimizer.rows ref_.Optimizer_reference.rows;
  same_cost (what ^ ".cost") fast.Optimizer.cost ref_.Optimizer_reference.cost

(* ---------- generators ---------- *)

(* every table shares the column set {id, a, b, c} so any (alias,
   column) pair is wellformed; what varies is cardinality, statistics,
   and which columns are indexed *)
let data_cols = [ "a"; "b"; "c" ]

let gen_table name =
  QCheck2.Gen.(
    let* card = oneofl [ 10.; 120.; 4000.; 150000. ] in
    let* widths = list_repeat 3 (oneofl [ 4.; 8.; 40. ]) in
    let* distincts =
      list_repeat 3 (oneofl [ 1.; 7.; 50.; card /. 2.; card ])
    in
    let* null_fracs = list_repeat 3 (oneofl [ 0.; 0.1; 0.5 ]) in
    let* ranged = list_repeat 3 bool in
    let* extra_indexed = list_repeat 3 bool in
    let col cname ~width ~distinct ~null_frac ~range =
      {
        Rschema.cname;
        ctype = Rtype.R_int;
        nullable = null_frac > 0.;
        stats =
          {
            Rschema.distinct = Float.max 1. (Float.min distinct card);
            null_frac;
            v_min = (if range then Some 0 else None);
            v_max = (if range then Some (int_of_float card) else None);
            avg_width = width;
          };
      }
    in
    let key = col "id" ~width:4. ~distinct:card ~null_frac:0. ~range:true in
    let data =
      List.map
        (fun (((cname, width), (distinct, null_frac)), range) ->
          col cname ~width ~distinct ~null_frac ~range)
        (List.combine
           (List.combine
              (List.combine data_cols widths)
              (List.combine distincts null_fracs))
           ranged)
    in
    let indexed =
      "id"
      :: List.filter_map
           (fun (c, b) -> if b then Some c else None)
           (List.combine data_cols extra_indexed)
    in
    return
      {
        Rschema.tname = name;
        key = "id";
        columns = key :: data;
        fks = [];
        indexed;
        card;
      })

let gen_catalog =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let+ tables =
      flatten_l (List.init n (fun i -> gen_table (Printf.sprintf "t%d" i)))
    in
    { Rschema.tables })

let gen_cmp =
  QCheck2.Gen.oneofl
    Logical.[ C_eq; C_eq; C_eq; C_ne; C_lt; C_le; C_gt; C_ge ]

let gen_col alias = QCheck2.Gen.(map (fun c -> (alias, c)) (oneofl data_cols))

(* a block over [nrels] aliases: mostly a connected join graph (each
   alias after the first joins some earlier alias with probability
   ~7/8, so disconnected cross-product fallbacks are exercised too),
   plus a few local constant predicates and stray column-column
   comparisons *)
let gen_block (cat : Rschema.t) nrels =
  QCheck2.Gen.(
    let tnames = List.map (fun (t : Rschema.table) -> t.tname) cat.tables in
    let aliases = List.init nrels (fun i -> Printf.sprintf "r%d" i) in
    let* tabs = list_repeat nrels (oneofl tnames) in
    let relations =
      List.map2 (fun alias table -> { Logical.alias; table }) aliases tabs
    in
    let* joins =
      flatten_l
        (List.filteri
           (fun i _ -> i > 0)
           (List.mapi
              (fun i a ->
                let* connectp = int_range 0 7 in
                if connectp = 0 && i > 0 then return []
                else
                  let* j = int_range 0 (max 0 (i - 1)) in
                  let* lhs = gen_col (List.nth aliases j) in
                  let* rc = gen_col a in
                  let* cmp = gen_cmp in
                  return [ { Logical.cmp; lhs; rhs = Logical.O_col rc } ])
              aliases))
    in
    let* nlocal = int_range 0 3 in
    let* locals =
      list_repeat nlocal
        (let* a = oneofl aliases in
         let* lhs = gen_col a in
         let* cmp = gen_cmp in
         let* v = int_range 0 100 in
         return { Logical.cmp; lhs; rhs = Logical.O_const (Rtype.V_int v) })
    in
    let* nout = int_range 0 3 in
    let* out =
      list_repeat nout
        (let* a = oneofl aliases in
         gen_col a)
    in
    return { Logical.relations; preds = List.concat joins @ locals; out })

let gen_case =
  QCheck2.Gen.(
    let* cat = gen_catalog in
    let* nrels = int_range 2 8 in
    let+ block = gen_block cat nrels in
    (cat, block))

let gen_shared_case =
  QCheck2.Gen.(
    let* cat = gen_catalog in
    let* sizes = list_size (int_range 2 4) (int_range 2 6) in
    let+ blocks = flatten_l (List.map (gen_block cat) sizes) in
    (cat, blocks))

let print_case (cat, block) =
  Format.asprintf "%a@.%a" Rschema.pp cat Logical.pp_block block

let print_shared_case (cat, blocks) =
  Format.asprintf "%a@.%a" Rschema.pp cat
    (Format.pp_print_list Logical.pp_block)
    blocks

(* ---------- properties ---------- *)

let prop_block_identical =
  QCheck2.Test.make ~name:"optimize_block bit-identical to reference"
    ~count:300 ~print:print_case gen_case (fun (cat, block) ->
      let fast = Optimizer.optimize_block ~params cat block in
      let ref_ = Optimizer_reference.optimize_block ~params cat block in
      same_result "block" fast ref_;
      true)

(* the blocks of one query flow through a shared signature cache; the
   interned signatures must hit and miss exactly like the reference's
   recursive plan_signature strings *)
let prop_shared_identical =
  QCheck2.Test.make ~name:"shared-cache sequence bit-identical to reference"
    ~count:150 ~print:print_shared_case gen_shared_case (fun (cat, blocks) ->
      let shared_fast = Hashtbl.create 16 in
      let shared_ref = Hashtbl.create 16 in
      List.iteri
        (fun i block ->
          let fast = Optimizer.optimize_block ~params ~shared:shared_fast cat block in
          let ref_ =
            Optimizer_reference.optimize_block ~params ~shared:shared_ref cat
              block
          in
          same_result (Printf.sprintf "shared block %d" i) fast ref_)
        blocks;
      true)

let prop_query_identical =
  QCheck2.Test.make ~name:"query_cost total bit-identical to reference"
    ~count:100 ~print:print_shared_case gen_shared_case (fun (cat, blocks) ->
      let q = { Logical.qname = "q"; blocks } in
      same_float "query total"
        (Optimizer.query_scalar_cost ~params cat q)
        (Optimizer_reference.query_scalar_cost ~params cat q);
      true)

(* ---------- deterministic greedy fallback ---------- *)

(* a 12-relation chain exceeds dp_limit (10), forcing both
   implementations through their greedy paths *)
let greedy_fallback () =
  let n = 12 in
  let table i =
    let col cname distinct =
      {
        Rschema.cname;
        ctype = Rtype.R_int;
        nullable = false;
        stats =
          {
            Rschema.distinct;
            null_frac = 0.;
            v_min = Some 0;
            v_max = Some 1000;
            avg_width = 8.;
          };
      }
    in
    let card = float_of_int (100 * (i + 1)) in
    {
      Rschema.tname = Printf.sprintf "t%d" i;
      key = "id";
      columns = [ col "id" card; col "a" (card /. 2.); col "b" 10. ];
      fks = [];
      indexed = (if i mod 2 = 0 then [ "id"; "a" ] else [ "id" ]);
      card;
    }
  in
  let cat = { Rschema.tables = List.init n table } in
  let aliases = List.init n (fun i -> Printf.sprintf "r%d" i) in
  let block =
    {
      Logical.relations =
        List.mapi (fun i a -> { Logical.alias = a; table = Printf.sprintf "t%d" i }) aliases;
      preds =
        List.init (n - 1) (fun i ->
            Logical.eq_col
              (Printf.sprintf "r%d" i, "a")
              (Printf.sprintf "r%d" (i + 1), "b"))
        @ [
            {
              Logical.cmp = Logical.C_eq;
              lhs = ("r0", "b");
              rhs = Logical.O_const (Rtype.V_int 3);
            };
          ];
      out = [ ("r0", "a"); (Printf.sprintf "r%d" (n - 1), "b") ];
    }
  in
  let fast = Optimizer.optimize_block ~params cat block in
  let ref_ = Optimizer_reference.optimize_block ~params cat block in
  same_result "greedy chain" fast ref_;
  let shared_fast = Hashtbl.create 16 and shared_ref = Hashtbl.create 16 in
  let fast2 = Optimizer.optimize_block ~params ~shared:shared_fast cat block in
  let ref2 =
    Optimizer_reference.optimize_block ~params ~shared:shared_ref cat block
  in
  same_result "greedy chain, first shared pass" fast2 ref2;
  (* second pass hits the populated caches *)
  let fast3 = Optimizer.optimize_block ~params ~shared:shared_fast cat block in
  let ref3 =
    Optimizer_reference.optimize_block ~params ~shared:shared_ref cat block
  in
  same_result "greedy chain, cached shared pass" fast3 ref3

let suite =
  [
    QCheck_alcotest.to_alcotest prop_block_identical;
    QCheck_alcotest.to_alcotest prop_shared_identical;
    QCheck_alcotest.to_alcotest prop_query_identical;
    Alcotest.test_case "greedy fallback beyond dp_limit" `Quick greedy_fallback;
  ]
