(* The parallel evaluation layer: whatever the [jobs] value, search
   results must be bit-identical to the sequential run — the reduction
   is deterministic by construction (static chunking, per-chunk engine
   shards, ordered merges) and these tests pin that contract down. *)

open Legodb
open Test_util

let all_queries = [| 8; 9; 11; 12; 13; 15; 16; 17 |]

let prop name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* trace equality modulo the [engine] field: snapshots carry wall-clock
   timers, and the hit/miss split legitimately depends on the chunking
   (chunks cannot see each other's in-flight entries) *)
let step_str = Option.map (Format.asprintf "%a" Space.pp_step)

let same_trace a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Search.trace_entry) (y : Search.trace_entry) ->
         x.Search.iteration = y.Search.iteration
         && Float.equal x.Search.cost y.Search.cost
         && x.Search.tables = y.Search.tables
         && Option.equal String.equal (step_str x.Search.step)
              (step_str y.Search.step))
       a b

let check_bit_identical name r1 rn =
  check_bool (name ^ ": same cost") true
    (Float.equal r1.Search.cost rn.Search.cost);
  check_string
    (name ^ ": same schema")
    (Xschema.to_string r1.Search.schema)
    (Xschema.to_string rn.Search.schema);
  check_bool (name ^ ": same trace") true
    (same_trace r1.Search.trace rn.Search.trace)

(* a random sub-workload and strategy; both strategies are re-run with
   jobs=1 and jobs=4 and must agree bit for bit *)
let gen_workload =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 2) (int_range 0 (Array.length all_queries - 1)))
      bool)

let run_determinism (picks, use_beam) =
  let workload =
    List.sort_uniq compare picks
    |> List.map (fun i -> Imdb.Queries.q all_queries.(i))
    |> Workload.of_queries
  in
  let run ~jobs =
    if use_beam then
      Search.beam ~jobs ~width:3 ~patience:1 ~max_iterations:2 ~workload
        (Init.all_inlined (Lazy.force annotated_imdb))
    else
      Search.greedy_si ~jobs ~max_iterations:3 ~workload
        (Lazy.force annotated_imdb)
  in
  let r1 = run ~jobs:1 and r4 = run ~jobs:4 in
  Float.equal r1.Search.cost r4.Search.cost
  && String.equal
       (Xschema.to_string r1.Search.schema)
       (Xschema.to_string r4.Search.schema)
  && same_trace r1.Search.trace r4.Search.trace

(* chunk the inlined IMDB neighbours three ways for the shard tests *)
let shard_fixture () =
  let workload = Imdb.Workloads.lookup in
  let eng = Cost_engine.create ~workload () in
  let base = Init.all_inlined (Lazy.force annotated_imdb) in
  let nbs = List.filteri (fun i _ -> i < 3) (Space.neighbors base) in
  let shards =
    List.map
      (fun (_, nb) ->
        let sh = Cost_engine.shard eng in
        (* the base schema first: every shard recomputes it privately
           (misses), then its neighbour hits on the unchanged tables *)
        ignore (Cost_engine.shard_cost sh base);
        ignore (Cost_engine.shard_cost sh nb);
        sh)
      nbs
  in
  (eng, base, shards)

let suite =
  [
    case "backend is coherent" (fun () ->
        check_bool "known backend" true
          (List.mem Par.backend [ "domains"; "sequential" ]);
        check_bool "availability matches backend"
          (String.equal Par.backend "domains")
          Par.available;
        check_bool "default_jobs positive" true (Par.default_jobs () >= 1));
    case "run_list returns results in submission order" (fun () ->
        (* uneven busy-work so eager completion would reorder results *)
        let work i =
          let n = ref 0 in
          for _ = 1 to (50 - i) * 1000 do
            incr n
          done;
          i + min !n 0
        in
        let fs = List.init 50 (fun i () -> work i) in
        check_bool "ordered" true (Par.run_list fs = List.init 50 Fun.id);
        check_bool "empty" true (Par.run_list [] = []);
        check_bool "singleton" true (Par.run_list [ (fun () -> 7) ] = [ 7 ]));
    case "run_list re-raises the leftmost failure" (fun () ->
        let fs =
          [
            (fun () -> 1);
            (fun () -> raise Not_found);
            (fun () -> invalid_arg "later failure");
          ]
        in
        match Par.run_list fs with
        | _ -> Alcotest.fail "expected Not_found"
        | exception Not_found -> ());
    case "pool survives a poisoned chunk" (fun () ->
        (* a task that raises must not kill its worker: later fan-outs
           on the same (global) pool still complete and stay ordered *)
        let expected = List.init 20 (fun i -> i * i) in
        for round = 1 to 3 do
          (match
             Par.run_list
               [ (fun () -> 1); (fun () -> failwith "poison"); (fun () -> 3) ]
           with
          | _ -> Alcotest.fail "expected Failure"
          | exception Failure _ -> ());
          check_bool
            (Printf.sprintf "usable after poison (round %d)" round)
            true
            (Par.run_list (List.init 20 (fun i () -> i * i)) = expected)
        done);
    case "merged snapshot sums the shard counters exactly" (fun () ->
        let eng, _, shards = shard_fixture () in
        let snaps = List.map Cost_engine.shard_snapshot shards in
        check_bool "shards hit inside their chunk" true
          (List.for_all (fun s -> s.Cost_engine.hits > 0) snaps);
        Cost_engine.merge eng shards;
        let s = Cost_engine.snapshot eng in
        let sum f = List.fold_left (fun a x -> a + f x) 0 snaps in
        let fsum f = List.fold_left (fun a x -> a +. f x) 0. snaps in
        check_int "evaluations"
          (sum (fun s -> s.Cost_engine.evaluations))
          s.Cost_engine.evaluations;
        check_int "hits" (sum (fun s -> s.Cost_engine.hits)) s.Cost_engine.hits;
        check_int "misses"
          (sum (fun s -> s.Cost_engine.misses))
          s.Cost_engine.misses;
        check_bool "mapping time" true
          (Float.equal s.Cost_engine.t_mapping
             (fsum (fun s -> s.Cost_engine.t_mapping)));
        check_bool "optimize time" true
          (Float.equal s.Cost_engine.t_optimize
             (fsum (fun s -> s.Cost_engine.t_optimize)));
        (* merge consumes the shards: merging again must not double-count *)
        Cost_engine.merge eng shards;
        let s' = Cost_engine.snapshot eng in
        check_int "double merge is a no-op" s.Cost_engine.evaluations
          s'.Cost_engine.evaluations);
    case "merged entries serve later costs from the cache" (fun () ->
        let eng, base, shards = shard_fixture () in
        Cost_engine.merge eng shards;
        let before = Cost_engine.snapshot eng in
        ignore (Cost_engine.cost eng base);
        let after = Cost_engine.snapshot eng in
        check_int "no new misses" before.Cost_engine.misses
          after.Cost_engine.misses;
        check_bool "only hits" true
          (after.Cost_engine.hits > before.Cost_engine.hits));
    case "shards of a foreign engine are rejected" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let a = Cost_engine.create ~workload () in
        let b = Cost_engine.create ~workload () in
        match Cost_engine.merge a [ Cost_engine.shard b ] with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "pschema_cost equals a one-shot engine" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let s = Init.all_inlined (Lazy.force annotated_imdb) in
        let p = Search.pschema_cost ~workload s in
        let cached = Cost_engine.cost (Cost_engine.create ~workload ()) s in
        let cold =
          Cost_engine.cost (Cost_engine.create ~memoize:false ~workload ()) s
        in
        check_bool "engine (memoized)" true (Float.equal p cached);
        check_bool "engine (uncached)" true (Float.equal p cold));
    prop "chunk_list: identity, count, balance, order" ~count:200
      QCheck2.Gen.(
        pair (int_range 0 12) (list_size (int_range 0 40) small_int))
      (fun (n, l) ->
        let chunks = Search.chunk_list n l in
        List.concat chunks = l
        && List.length chunks <= max 1 n
        && List.for_all (fun c -> c <> []) chunks
        && (l = [] || chunks <> [])
        &&
        let sizes = List.map List.length chunks in
        let mx = List.fold_left max 0 sizes in
        let mn = List.fold_left min max_int sizes in
        sizes = [] || mx - mn <= 1);
    case "run_tasks runs every index exactly once, workers in range"
      (fun () ->
        let n = 100 in
        let jobs = 4 in
        let counts = Array.make n 0 in
        let bad_worker = Atomic.make false in
        (* each index is claimed by exactly one participant, so the
           per-index slot write never races *)
        let idle =
          Par.run_tasks ~jobs n (fun ~worker i ->
              if worker < 0 || worker >= jobs then Atomic.set bad_worker true;
              counts.(i) <- counts.(i) + 1)
        in
        check_bool "worker slots within jobs" false (Atomic.get bad_worker);
        check_bool "caller idle time non-negative" true (idle >= 0.);
        check_bool "each index exactly once" true
          (Array.for_all (fun c -> c = 1) counts);
        check_bool "empty fan-out" true
          (Par.run_tasks ~jobs:4 0 (fun ~worker:_ _ -> assert false) = 0.));
    case "run_tasks re-raises the lowest failing index" (fun () ->
        match
          Par.run_tasks ~jobs:4 10 (fun ~worker:_ i ->
              if i = 3 then raise Not_found;
              if i = 7 then failwith "higher index loses")
        with
        | _ -> Alcotest.fail "expected Not_found"
        | exception Not_found -> ());
    case "run_tasks tolerates nested fan-outs (runs them inline)"
      (fun () ->
        let inner = Atomic.make 0 in
        ignore
          (Par.run_tasks ~jobs:2 3 (fun ~worker:_ _ ->
               ignore
                 (Par.run_tasks ~jobs:2 4 (fun ~worker:_ j ->
                      ignore (Atomic.fetch_and_add inner j)))));
        (* 3 outer tasks x (0+1+2+3) *)
        check_int "nested tasks all ran" 18 (Atomic.get inner));
    case "pool is sized by jobs and capped by cores, grow-only" (fun () ->
        let cap = max 0 (Par.default_jobs () - 1) in
        ignore (Par.run_list (List.init 30 (fun i () -> i)));
        let after_wide = Par.pool_size () in
        check_bool "a wide list does not outgrow the core count" true
          (after_wide <= cap);
        Par.ensure_workers ~jobs:5;
        let after = Par.pool_size () in
        check_bool "grow-only" true (after >= after_wide);
        check_bool "capped by cores and the domain limit" true
          (after <= cap && after <= 120));
    case "a frozen engine rejects direct costing until thawed" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let eng = Cost_engine.create ~workload () in
        let s = Init.all_inlined (Lazy.force annotated_imdb) in
        Cost_engine.freeze eng;
        (match Cost_engine.cost eng s with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
        (match Cost_engine.freeze eng with
        | _ -> Alcotest.fail "expected Invalid_argument on double freeze"
        | exception Invalid_argument _ -> ());
        Cost_engine.discard_shards eng;
        ignore (Cost_engine.cost eng s));
    case "worker shards are persistent and reusable after merge" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let eng = Cost_engine.create ~workload () in
        let shards = Cost_engine.worker_shards eng 3 in
        check_int "requested width" 3 (Array.length shards);
        let again = Cost_engine.worker_shards eng 2 in
        check_bool "same shard objects on re-request" true
          (again.(0) == shards.(0) && again.(1) == shards.(1));
        let s = Init.all_inlined (Lazy.force annotated_imdb) in
        ignore (Cost_engine.shard_cost shards.(0) s);
        Cost_engine.merge eng (Array.to_list shards);
        let snap = Cost_engine.shard_snapshot shards.(0) in
        check_int "merge resets the shard for reuse" 0
          snap.Cost_engine.evaluations;
        (* reused shard hits on the merged entry via the shared cache *)
        ignore (Cost_engine.shard_cost shards.(0) s);
        let snap = Cost_engine.shard_snapshot shards.(0) in
        check_int "no recomputation on reuse" 0 snap.Cost_engine.misses;
        Cost_engine.discard_shards eng;
        check_int "discard zeroes private counters" 0
          (Cost_engine.shard_snapshot shards.(0)).Cost_engine.evaluations);
    case "engine pool/shard reuse does not leak counters between runs"
      (fun () ->
        (* fresh-engine equality oracle: a search on a reused engine
           (persistent worker shards, warm memo) must select the same
           design as a fresh-engine run, and its per-search engine
           delta must count the same configurations, statement
           costings, and faults — only the hit/miss split may shift
           toward hits *)
        let workload = Imdb.Workloads.mixed 0.5 in
        let schema = Lazy.force annotated_imdb in
        let run ?engine () =
          Search.greedy_si ~jobs:4 ~max_iterations:3 ?engine ~workload schema
        in
        let r1 = run () in
        let eng = Cost_engine.create ~workload () in
        let ra = run ~engine:eng () in
        let rb = run ~engine:eng () in
        check_bit_identical "first shared-engine run" r1 ra;
        check_bit_identical "second shared-engine run" r1 rb;
        let d1 = r1.Search.engine and db = rb.Search.engine in
        check_int "evaluations do not leak across runs"
          d1.Cost_engine.evaluations db.Cost_engine.evaluations;
        check_int "faults do not leak across runs" d1.Cost_engine.faults
          db.Cost_engine.faults;
        check_int "statement costings do not leak across runs"
          (d1.Cost_engine.hits + d1.Cost_engine.misses)
          (db.Cost_engine.hits + db.Cost_engine.misses));
    case "abandoned parallel iteration publishes nothing" (fun () ->
        (* a budget that trips mid-iteration abandons the fan-out
           wholesale: the engine's memo table must be exactly the
           barrier state — the table of a run stopped cleanly at the
           completed-iteration count — with no partial shard deltas *)
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let eng = Cost_engine.create ~workload () in
        let budget = Budget.create ~max_evaluations:40 () in
        let r =
          Search.greedy_si ~jobs:4 ~engine:eng ~budget ~workload schema
        in
        check_string "stopped by the evaluation budget" "cost_budget"
          (Search.stopped_string r.Search.stopped);
        let completed =
          List.fold_left
            (fun acc (e : Search.trace_entry) -> max acc e.Search.iteration)
            0 r.Search.trace
        in
        let eng' = Cost_engine.create ~workload () in
        let _ =
          Search.greedy_si ~jobs:4 ~engine:eng' ~max_iterations:completed
            ~workload schema
        in
        check_bool "memo table equals the barrier state" true
          (Cost_engine.cache_entries eng = Cost_engine.cache_entries eng'));
    case "seam stats accumulate on parallel runs and reset" (fun () ->
        Search.seam_reset ();
        let workload = Imdb.Workloads.lookup in
        ignore
          (Search.greedy_si ~jobs:4 ~max_iterations:2 ~workload
             (Lazy.force annotated_imdb));
        let s = Search.seam_stats () in
        if Par.available then begin
          check_bool "fan-outs counted" true (s.Search.s_fanouts > 0);
          check_bool "fan-out time sane" true
            (s.Search.s_t_fanout >= 0. && s.Search.s_t_merge >= 0.
           && s.Search.s_t_barrier_idle >= 0.)
        end
        else check_int "sequential backend never fans out" 0 s.Search.s_fanouts;
        Search.seam_reset ();
        check_int "reset" 0 (Search.seam_stats ()).Search.s_fanouts);
    case "jobs:0 auto-detects and stays bit-identical" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let run ~jobs =
          Search.greedy_si ~jobs ~max_iterations:2 ~workload
            (Lazy.force annotated_imdb)
        in
        check_bit_identical "auto" (run ~jobs:1) (run ~jobs:0));
    case "full greedy_si run is jobs-invariant" (fun () ->
        let workload = Imdb.Workloads.mixed 0.5 in
        let run ~jobs =
          Search.greedy_si ~jobs ~workload (Lazy.force annotated_imdb)
        in
        let r1 = run ~jobs:1 in
        check_bit_identical "j2" r1 (run ~jobs:2);
        check_bit_identical "j4" r1 (run ~jobs:4));
    prop "greedy/beam are bit-identical for jobs=1 and jobs=4" ~count:6
      gen_workload run_determinism;
  ]
