open Legodb
open Test_util

(* reuse the People/Pets playground *)
let catalog = { Rschema.tables = Test_relational.catalog.Rschema.tables }
let params = Cost.default_params

let rel alias table = { Logical.alias; table }

let block ?(out = []) relations preds = { Logical.relations; preds; out }

let optimize b = Optimizer.optimize_block ~params catalog b

(* the toy tables fit in one page, where scans always win; index tests
   need statistics at realistic scale *)
let big_catalog =
  let scale_table (t : Rschema.table) =
    {
      t with
      Rschema.card = t.Rschema.card *. 1000.;
      columns =
        List.map
          (fun (c : Rschema.column) ->
            { c with Rschema.stats = { c.Rschema.stats with Rschema.distinct = c.Rschema.stats.Rschema.distinct *. 1000. } })
          t.Rschema.columns;
    }
  in
  { Rschema.tables = List.map scale_table catalog.Rschema.tables }

(* NULL-join playground: two tables joined on a nullable column, half
   the rows NULL on each side.  SQL semantics: NULL = NULL is not true,
   so only the (L_id 0, R_id 0) pair with k = 1 may join. *)
let null_catalog =
  let t name =
    {
      Rschema.tname = name;
      key = name ^ "_id";
      columns =
        [
          Test_relational.col (name ^ "_id") Rtype.R_int ~width:4. ~distinct:4.;
          Test_relational.col "k" Rtype.R_int ~nullable:true ~null_frac:0.5
            ~distinct:2.;
        ];
      fks = [];
      indexed = [ name ^ "_id"; "k" ];
      card = 4.;
    }
  in
  { Rschema.tables = [ t "L"; t "R" ] }

let null_db () =
  let db = Storage.create null_catalog in
  let ins t rows =
    List.iter
      (fun (id, k) -> Storage.insert db t [| Rtype.V_int id; k |])
      rows
  in
  ins "L"
    [
      (0, Rtype.V_int 1);
      (1, Rtype.V_null);
      (2, Rtype.V_int 2);
      (3, Rtype.V_null);
    ];
  ins "R"
    [
      (0, Rtype.V_int 1);
      (1, Rtype.V_null);
      (2, Rtype.V_int 3);
      (3, Rtype.V_null);
    ];
  db

let suite =
  [
    case "cost arithmetic" (fun () ->
        let c = Cost.add (Cost.scale 2. { Cost.seeks = 1.; pages_read = 2.; pages_written = 0.; cpu = 10. })
                  Cost.zero in
        check_bool "scaled" true (c.Cost.pages_read = 4.);
        check_bool "total positive" true (Cost.total params c > 0.));
    case "pages rounds up with a floor of one" (fun () ->
        check_bool "floor" true (Cost.pages params 10. = 1.);
        check_bool "ceil" true (Cost.pages params (params.Cost.page_size +. 1.) = 2.));
    case "selectivity: equality on a constant" (fun () ->
        let b = block [ rel "p" "People" ] [ Logical.eq_const ("p", "name") (Rtype.V_string "x") ] in
        let env = Estimate.env catalog b in
        let sel = Estimate.pred_selectivity env (List.hd b.Logical.preds) in
        check_bool "1/distinct" true (abs_float (sel -. 0.01) < 1e-9));
    case "selectivity: join on fk" (fun () ->
        let b =
          block [ rel "p" "People"; rel "t" "Pets" ]
            [ Logical.eq_col ("t", "parent_People") ("p", "People_id") ]
        in
        let env = Estimate.env catalog b in
        check_bool "rows = pets" true
          (abs_float (Estimate.subset_rows env [ "p"; "t" ] -. 300.) < 1.));
    case "base rows apply local filters" (fun () ->
        let b = block [ rel "p" "People" ] [ Logical.eq_const ("p", "age") (Rtype.V_int 30) ] in
        let env = Estimate.env catalog b in
        check_bool "100/50" true (abs_float (Estimate.base_rows env "p" -. 2.) < 1e-6));
    case "output width from projection" (fun () ->
        let b = block [ rel "p" "People" ] [] ~out:[ ("p", "name") ] in
        let env = Estimate.env catalog b in
        check_bool "20" true (Estimate.output_width env b.Logical.out [ "p" ] = 20.);
        check_bool "all columns" true
          (Estimate.output_width env [] [ "p" ] = 28.));
    case "single relation plan is a scan" (fun () ->
        let r = optimize (block [ rel "p" "People" ] []) in
        match r.Optimizer.plan with
        | Physical.Scan { access = Physical.Seq_scan; _ } -> ()
        | _ -> Alcotest.fail "expected a sequential scan");
    case "selective indexed predicate picks the index" (fun () ->
        let cat = Rschema.add_indexes big_catalog [ ("Pets", "parent_People") ] in
        let b =
          block [ rel "t" "Pets" ]
            [ Logical.eq_const ("t", "parent_People") (Rtype.V_int 5) ]
        in
        let r = Optimizer.optimize_block ~params cat b in
        match r.Optimizer.plan with
        | Physical.Scan { access = Physical.Index_probe { column = "parent_People" }; _ } -> ()
        | p -> Alcotest.failf "expected index probe, got %s" (Format.asprintf "%a" Physical.pp p));
    case "unselective predicate keeps the scan" (fun () ->
        (* species has 5 distinct values over 300 rows: scan wins *)
        let cat = Rschema.add_indexes catalog [ ("Pets", "species") ] in
        let b =
          block [ rel "t" "Pets" ]
            [ Logical.eq_const ("t", "species") (Rtype.V_string "cat") ]
        in
        let r = Optimizer.optimize_block ~params cat b in
        match r.Optimizer.plan with
        | Physical.Scan { access = Physical.Seq_scan; _ } -> ()
        | _ -> Alcotest.fail "expected a scan");
    case "fk join estimates child cardinality" (fun () ->
        let b =
          block [ rel "p" "People"; rel "t" "Pets" ]
            [ Logical.eq_col ("t", "parent_People") ("p", "People_id") ]
        in
        let r = optimize b in
        check_bool "rows = 300" true (abs_float (r.Optimizer.rows -. 300.) < 1.));
    case "selective outer side drives index-nl join" (fun () ->
        let b =
          block
            [ rel "p" "People"; rel "t" "Pets" ]
            [
              Logical.eq_const ("p", "People_id") (Rtype.V_int 7);
              Logical.eq_col ("t", "parent_People") ("p", "People_id");
            ]
        in
        let r = Optimizer.optimize_block ~params big_catalog b in
        match r.Optimizer.plan with
        | Physical.Join { jm = Physical.Index_nl _; _ } -> ()
        | p -> Alcotest.failf "expected index-nl, got %s" (Format.asprintf "%a" Physical.pp p));
    case "cost grows with cardinality" (fun () ->
        let big =
          { Rschema.tables =
              [ { (Rschema.table catalog "People") with card = 1_000_000. } ] }
        in
        let b = block [ rel "p" "People" ] [] in
        let small_cost = (optimize b).Optimizer.cost in
        let big_cost = (Optimizer.optimize_block ~params big b).Optimizer.cost in
        check_bool "monotone" true
          (Cost.total params big_cost > Cost.total params small_cost));
    case "query cost shares repeated accesses across blocks" (fun () ->
        (* outer-union blocks of one query share the buffer pool: the
           second identical block pays CPU and output but no I/O *)
        let b = block [ rel "p" "People" ] [] in
        let q1 = { Logical.qname = "q1"; blocks = [ b ] } in
        let q2 = { Logical.qname = "q2"; blocks = [ b; b ] } in
        let _, c1 = Optimizer.query_cost ~params catalog q1 in
        let _, c2 = Optimizer.query_cost ~params catalog q2 in
        check_bool "more than one" true (c2 > c1);
        check_bool "less than double" true (c2 < 2. *. c1));
    case "distinct queries do not share accesses" (fun () ->
        let b = block [ rel "p" "People" ] [] in
        let q = { Logical.qname = "q"; blocks = [ b ] } in
        let _, c1 = Optimizer.query_cost ~params catalog q in
        let _, c1' = Optimizer.query_cost ~params catalog q in
        check_bool "same cost each time" true (abs_float (c1 -. c1') < 1e-9));
    case "workload cost weights queries" (fun () ->
        let b = block [ rel "p" "People" ] [] in
        let q = { Logical.qname = "q"; blocks = [ b ] } in
        let c1 = Optimizer.workload_cost ~params catalog [ (q, 1.) ] in
        let c2 = Optimizer.workload_cost ~params catalog [ (q, 0.5); (q, 0.5) ] in
        check_bool "same" true (abs_float (c1 -. c2) < 1e-6));
    case "block validation rejects unknown columns" (fun () ->
        let b = block [ rel "p" "People" ] [ Logical.eq_const ("p", "ghost") (Rtype.V_int 1) ] in
        match optimize b with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    case "greedy fallback beyond dp_limit" (fun () ->
        (* chain of dp_limit+2 copies of Pets joined on fk to one People *)
        let n = Optimizer.dp_limit + 2 in
        let rels = rel "p" "People" :: List.init n (fun i -> rel (Printf.sprintf "t%d" i) "Pets") in
        let preds =
          List.init n (fun i ->
              Logical.eq_col ((Printf.sprintf "t%d" i), "parent_People") ("p", "People_id"))
        in
        let r = optimize (block rels preds) in
        check_int "all relations in plan" (n + 1)
          (List.length (Physical.relations r.Optimizer.plan)));
    case "executor agrees across join methods" (fun () ->
        let db = Test_relational.fill_db () in
        let b =
          block
            [ rel "p" "People"; rel "t" "Pets" ]
            [
              Logical.eq_col ("t", "parent_People") ("p", "People_id");
              Logical.eq_const ("p", "age") (Rtype.V_int 25);
            ]
        in
        let conds = [ (("p", "People_id"), ("t", "parent_People")) ] in
        let scan_p =
          Physical.Scan
            { rel = rel "p" "People";
              access = Physical.Seq_scan;
              filters = [ Logical.eq_const ("p", "age") (Rtype.V_int 25) ] }
        in
        let scan_t =
          Physical.Scan { rel = rel "t" "Pets"; access = Physical.Seq_scan; filters = [] }
        in
        let run jm right =
          let plan = Physical.Join { jm; left = scan_p; right; conds; extra = [] } in
          fst (Executor.run_block db plan b.Logical.out) |> List.length
        in
        let h = run Physical.Hash_join scan_t in
        let n = run Physical.Nl_join scan_t in
        let i = run (Physical.Index_nl { column = "parent_People" }) scan_t in
        check_int "hash vs nl" h n;
        check_int "hash vs inl" h i;
        (* two people aged 25 (i=5, i=55), three pets each *)
        check_int "expected rows" 6 h);
    case "NULL join keys never match, whatever the join method" (fun () ->
        (* regression: the hash join indexed tuples by structural key,
           so V_null = V_null matched and hash joins returned rows the
           other methods reject through eval_cmp; the index-nl probe
           had the same bug via Storage.lookup on a NULL key *)
        let db = null_db () in
        let scan t alias =
          Physical.Scan
            { rel = rel alias t; access = Physical.Seq_scan; filters = [] }
        in
        let conds = [ (("l", "k"), ("r", "k")) ] in
        let out = [ ("l", "L_id"); ("r", "R_id") ] in
        let run jm =
          let plan =
            Physical.Join
              {
                jm;
                left = scan "L" "l";
                right = scan "R" "r";
                conds;
                extra = [];
              }
          in
          fst (Executor.run_block db plan out)
        in
        let expected = [ [ Rtype.V_int 0; Rtype.V_int 0 ] ] in
        let h = run Physical.Hash_join in
        let n = run Physical.Nl_join in
        let i = run (Physical.Index_nl { column = "k" }) in
        check_bool "hash join skips NULL keys" true (h = expected);
        check_bool "nl join skips NULL keys" true (n = expected);
        check_bool "index-nl join skips NULL keys" true (i = expected));
    case "run_query preserves block order" (fun () ->
        (* regression for the quadratic [rows @ r] accumulation: the
           rewrite must still emit block results in block order *)
        let db = Test_relational.fill_db () in
        let block_for v =
          ( Physical.Scan
              {
                rel = rel "p" "People";
                access = Physical.Index_probe { column = "People_id" };
                filters = [ Logical.eq_const ("p", "People_id") (Rtype.V_int v) ];
              },
            [ ("p", "People_id") ] )
        in
        let ids = [ 3; 1; 4; 1; 5 ] in
        let rows, m = Executor.run_query db (List.map block_for ids) in
        check_bool "rows follow block order" true
          (rows = List.map (fun v -> [ Rtype.V_int v ]) ids);
        check_int "output rows" 5 m.Executor.output_rows);
    case "executor respects index probes" (fun () ->
        let db = Test_relational.fill_db () in
        let plan =
          Physical.Scan
            {
              rel = rel "t" "Pets";
              access = Physical.Index_probe { column = "parent_People" };
              filters = [ Logical.eq_const ("t", "parent_People") (Rtype.V_int 9) ];
            }
        in
        let rows, m = Executor.run_block db plan [] in
        check_int "three" 3 (List.length rows);
        check_int "one probe" 1 m.Executor.index_probes;
        check_int "no scan" 0 m.Executor.tuples_scanned);
    case "optimized plan executes and matches naive count" (fun () ->
        let db = Test_relational.fill_db () in
        let db = Storage.refresh_stats db in
        let b =
          block
            [ rel "p" "People"; rel "t" "Pets" ]
            [
              Logical.eq_col ("t", "parent_People") ("p", "People_id");
              Logical.eq_const ("t", "species") (Rtype.V_string "dog");
            ]
            ~out:[ ("p", "name") ]
        in
        let r = Optimizer.optimize_block ~params (Storage.catalog db) b in
        let rows, _ = Executor.run_block db r.Optimizer.plan b.Logical.out in
        check_int "150 dogs" 150 (List.length rows));
  ]
