(* Anytime search: budgets, cancellation, and fault accounting.
   The contracts under test: a budgeted run returns exactly the
   best-so-far prefix of the unbudgeted trace, bit-identically for
   every [jobs] value; and a search with injected faults selects
   exactly what a search over the surviving candidates would, with a
   structured failure record per skipped candidate. *)

open Legodb
open Test_util

let prop name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let all_queries = [| 8; 9; 11; 12; 13; 15; 16; 17 |]

let prefix n l = List.filteri (fun i _ -> i < n) l

(* a random sub-workload, evaluation budget, and jobs value: the
   budgeted greedy must be an exact prefix of the unbudgeted trace and
   bit-identical whatever the jobs value *)
let gen_budgeted =
  QCheck2.Gen.(
    triple
      (list_size (int_range 1 2) (int_range 0 (Array.length all_queries - 1)))
      (int_range 1 60)
      (oneofl [ 1; 2; 4 ]))

let run_prefix (picks, max_evals, jobs) =
  let workload =
    List.sort_uniq compare picks
    |> List.map (fun i -> Imdb.Queries.q all_queries.(i))
    |> Workload.of_queries
  in
  let schema = Lazy.force annotated_imdb in
  let full = Search.greedy_si ~max_iterations:3 ~workload schema in
  let budgeted ~jobs =
    Search.greedy_si ~max_iterations:3 ~jobs
      ~budget:(Budget.create ~max_evaluations:max_evals ())
      ~workload schema
  in
  let b1 = budgeted ~jobs:1 in
  let bj = budgeted ~jobs in
  let n = List.length b1.Search.trace in
  Test_par.same_trace b1.Search.trace (prefix n full.Search.trace)
  && Test_par.same_trace b1.Search.trace bj.Search.trace
  && b1.Search.stopped = bj.Search.stopped
  && Float.equal b1.Search.cost bj.Search.cost
  && String.equal
       (Xschema.to_string b1.Search.schema)
       (Xschema.to_string bj.Search.schema)
  (* a run cut short must blame the evaluation budget *)
  && (n = List.length full.Search.trace || b1.Search.stopped = `Cost_budget)

let suite =
  [
    case "budget primitives" (fun () ->
        let b = Budget.create ~max_evaluations:2 () in
        Budget.tick b;
        Budget.tick b;
        (match Budget.tick b with
        | () -> Alcotest.fail "expected Exhausted"
        | exception Budget.Exhausted `Cost_budget -> ());
        (* the failed tick drew its ticket before raising *)
        check_int "tickets drawn" 3 (Budget.evaluations b);
        check_bool "barrier reports the spent budget" true
          (Budget.stop_at_iteration b 0 = Some `Cost_budget);
        let i = Budget.create () in
        Budget.poll i;
        check_bool "fresh budget passes the barrier" true
          (Budget.stop_at_iteration i 5 = None);
        Budget.interrupt i;
        check_bool "interrupt is visible" true (Budget.interrupted i);
        (match Budget.poll i with
        | () -> Alcotest.fail "expected Exhausted"
        | exception Budget.Exhausted `Interrupted -> ());
        check_bool "stopped names are stable" true
          (List.map Search.stopped_string
             [ `Converged; `Deadline; `Iterations; `Cost_budget; `Interrupted ]
          = [
              "converged"; "deadline"; "iterations"; "cost_budget"; "interrupted";
            ]));
    case "unbudgeted searches report convergence" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let r = Search.greedy_si ~workload (Lazy.force annotated_imdb) in
        check_string "greedy" "converged" (Search.stopped_string r.Search.stopped);
        check_bool "no failures on imdb" true (r.Search.failures = []);
        List.iter
          (fun (e : Search.trace_entry) ->
            check_bool "clean trace entries" true (e.Search.failures = []))
          r.Search.trace);
    case "zero deadline returns the initial configuration" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let r =
          Search.greedy_si ~budget:(Budget.create ~wall_ms:0. ()) ~workload
            schema
        in
        check_string "reason" "deadline" (Search.stopped_string r.Search.stopped);
        check_int "only the initial entry" 1 (List.length r.Search.trace);
        check_string "initial schema"
          (Xschema.to_string (Init.all_inlined schema))
          (Xschema.to_string r.Search.schema);
        check_bool "cost is the initial entry's" true
          (Float.equal r.Search.cost (List.hd r.Search.trace).Search.cost));
    case "a pre-tripped interrupt stops both strategies" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let tripped () =
          let b = Budget.create () in
          Budget.interrupt b;
          b
        in
        let g = Search.greedy_si ~budget:(tripped ()) ~workload schema in
        check_string "greedy reason" "interrupted"
          (Search.stopped_string g.Search.stopped);
        check_int "greedy trace" 1 (List.length g.Search.trace);
        let b =
          Search.beam ~width:2 ~kinds:[ Space.K_outline ] ~budget:(tripped ())
            ~workload (Init.all_inlined schema)
        in
        check_string "beam reason" "interrupted"
          (Search.stopped_string b.Search.stopped);
        check_int "beam trace" 1 (List.length b.Search.trace));
    case "iteration caps stop with the exact prefix" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let full = Search.greedy_si ~workload schema in
        List.iter
          (fun k ->
            let r =
              Search.greedy_si
                ~budget:(Budget.create ~max_iterations:k ())
                ~workload schema
            in
            check_string "reason" "iterations"
              (Search.stopped_string r.Search.stopped);
            check_int "completed iterations" (k + 1) (List.length r.Search.trace);
            check_bool "prefix" true
              (Test_par.same_trace r.Search.trace (prefix (k + 1) full.Search.trace)))
          [ 1; 2 ]);
    case "budget tickets equal engine evaluations minus the initial" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let b = Budget.create () in
        let r = Search.greedy_si ~budget:b ~workload (Lazy.force annotated_imdb) in
        check_int "tickets"
          (r.Search.engine.Cost_engine.evaluations - 1)
          (Budget.evaluations b));
    case "budgeted beam returns a prefix with the reason" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let start = Init.all_inlined (Lazy.force annotated_imdb) in
        let run ?budget () =
          Search.beam ~width:3 ~patience:1 ~max_iterations:3
            ~kinds:[ Space.K_outline ] ?budget ~workload start
        in
        let full = run () in
        let r = run ~budget:(Budget.create ~max_iterations:1 ()) () in
        check_string "reason" "iterations" (Search.stopped_string r.Search.stopped);
        let n = List.length r.Search.trace in
        check_bool "prefix" true
          (Test_par.same_trace r.Search.trace (prefix n full.Search.trace));
        let z = run ~budget:(Budget.create ~wall_ms:0. ()) () in
        check_string "deadline reason" "deadline"
          (Search.stopped_string z.Search.stopped);
        check_int "deadline trace" 1 (List.length z.Search.trace));
    case "injected faults equal filtering the candidates out" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Init.all_inlined (Lazy.force annotated_imdb) in
        let init_s = Xschema.to_string schema in
        let inject s =
          (not (String.equal s init_s)) && Hashtbl.hash s mod 3 = 0
        in
        let kinds = [ Space.K_outline ] in
        let max_iterations = 3 in
        (* reference: a hand-rolled greedy over the surviving candidates
           only, costed by a fault-free engine *)
        let eng = Cost_engine.create ~workload () in
        let rec go it s c =
          if it >= max_iterations then (s, c)
          else
            let survivors =
              List.filter
                (fun (_, s') -> not (inject (Xschema.to_string s')))
                (Space.neighbors ~kinds s)
            in
            let best =
              List.fold_left
                (fun best (_, s') ->
                  match Cost_engine.cost_opt eng s' with
                  | None -> best
                  | Some c' -> (
                      match best with
                      | Some (_, bc) when bc <= c' -> best
                      | _ -> Some (s', c')))
                None survivors
            in
            match best with
            | Some (s', c') when c' < c -> go (it + 1) s' c'
            | _ -> (s, c)
        in
        let ref_schema, ref_cost = go 0 schema (Cost_engine.cost eng schema) in
        let run ~jobs =
          Search.greedy ~kinds ~max_iterations ~jobs
            ~engine:(Cost_engine.create ~workload ~inject ())
            ~workload schema
        in
        let r = run ~jobs:1 in
        check_string "same schema as the filtered search"
          (Xschema.to_string ref_schema)
          (Xschema.to_string r.Search.schema);
        check_bool "same cost" true (Float.equal ref_cost r.Search.cost);
        check_bool "failures recorded" true (r.Search.failures <> []);
        List.iter
          (fun (f : Search.failure) ->
            check_string "stage" "inject" f.Search.f_stage;
            check_string "class" "Injected" f.Search.f_class;
            check_bool "iteration set" true (f.Search.f_iteration >= 1))
          r.Search.failures;
        check_int "snapshot counts them too"
          (List.length r.Search.failures)
          r.Search.engine.Cost_engine.faults;
        (* the injection hook is a pure function of the configuration,
           so the run — failure records included — is jobs-invariant *)
        let fkey (f : Search.failure) =
          ( f.Search.f_iteration,
            Format.asprintf "%a" Space.pp_step f.Search.f_step,
            f.Search.f_stage )
        in
        let r4 = run ~jobs:4 in
        Test_par.check_bit_identical "inject" r r4;
        check_bool "same failure records" true
          (List.map fkey r.Search.failures = List.map fkey r4.Search.failures));
    prop "budgeted greedy is an exact prefix, identical across jobs" ~count:6
      gen_budgeted run_prefix;
  ]
