(* The network front door.  Three families of contracts:

   - the frame codec: request and response frames round-trip
     bit-exactly, and any single bit flip, truncation, or garbage
     prefix of a frame is rejected at the framing layer — never parsed
     as a different message;

   - the server: answers over TCP are bit-identical to the in-process
     [Serve.run_batch] path (concurrent clients included), pipelined
     appends share commit groups with one fsync each, per-request
     timeouts and bad requests poison only their own slot, and a
     malformed frame costs its connection exactly one structured error
     and a clean close — the server keeps serving everyone else;

   - the client: pipelined sends match responses positionally, and a
     peer that breaks the protocol surfaces as [Closed] or
     [Protocol_error], never a hang or a crash.

   The server under test runs in a [Thread] on an ephemeral port; its
   select loop blocks outside the runtime lock, so client threads make
   progress on every OCaml version the CI builds.  On a 4.14 build the
   server thread is the only thread mutating [Serve] state, so every
   in-process reference computation below is sequenced strictly after
   the server thread is joined. *)

open Legodb
open Test_util

let prop name ?(count = 30) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let tmp_dir () =
  let d = Filename.temp_file "legodb_net" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let setup () =
  let doc = Lazy.force small_imdb_doc in
  let stats = Collector.collect doc in
  let ps = Init.all_inlined (Annotate.schema stats Imdb.Schema.schema) in
  let m = mapping_of ps in
  (doc, m)

(* the queries travel as source text and are parsed server-side; the
   same texts parsed here are the in-process reference *)
let q_texts =
  [
    "FOR $v IN document(\"x\")/imdb/show WHERE $v/year = 1990 RETURN \
     $v/title, $v/year";
    "FOR $v IN document(\"x\")/imdb/actor RETURN $v/name";
    "FOR $i IN document(\"x\")/imdb $a in $i/actor, $m1 in $a/played RETURN \
     $a/name, $m1/title";
  ]

let q_asts = List.map (Xq_parse.parse ~name:"net") q_texts

(* ------------------------------------------------------------------ *)
(* harness: a served corpus on an ephemeral port, in a thread          *)
(* ------------------------------------------------------------------ *)

let run_server ?group_commit_ms ?max_group ?idle_timeout_ms ?max_conns
    ?timeout_ms ?max_write ?net_out server f =
  let stop = ref false in
  let port = ref None in
  let failure = ref None in
  let th =
    Thread.create
      (fun () ->
        try
          let net =
            Net.serve ?group_commit_ms ?max_group ?idle_timeout_ms ?max_conns
              ?timeout_ms ?max_write ~stop
              ~on_listen:(fun p -> port := Some p)
              ~port:0 server
          in
          (* the loop's final counters, visible once [halt] has joined *)
          Option.iter (fun r -> r := net) net_out
        with e -> failure := Some e)
      ()
  in
  let halt () =
    stop := true;
    Thread.join th;
    match !failure with
    | Some e -> Alcotest.failf "server thread died: %s" (Printexc.to_string e)
    | None -> ()
  in
  let rec await n =
    match !port with
    | Some p -> p
    | None ->
        if !failure <> None || n > 500 then begin
          halt ();
          Alcotest.fail "server never listened"
        end
        else begin
          Thread.delay 0.01;
          await (n + 1)
        end
  in
  let p = await 0 in
  let r = match f p with r -> Ok r | exception e -> Error e in
  halt ();
  match r with Ok r -> r | Error e -> raise e

let with_client port f =
  let c = Net.connect ~port () in
  Fun.protect ~finally:(fun () -> Net.close c) (fun () -> f c)

let expect_rows name = function
  | Net.Rows { rows; _ } -> rows
  | Net.Error_reply m -> Alcotest.failf "%s: error reply: %s" name m
  | _ -> Alcotest.failf "%s: unexpected response kind" name

let expect_error name = function
  | Net.Error_reply m -> m
  | _ -> Alcotest.failf "%s: expected an error reply" name

let expect_stats name = function
  | Net.Stats_reply { serve; _ } -> serve
  | _ -> Alcotest.failf "%s: expected a stats reply" name

let expect_net_stats name = function
  | Net.Stats_reply { net; _ } -> net
  | _ -> Alcotest.failf "%s: expected a stats reply" name

(* ------------------------------------------------------------------ *)
(* suite                                                               *)
(* ------------------------------------------------------------------ *)

let suite =
  [
    case "ping, stats, and a query answered over TCP" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let rows =
          run_server server (fun port ->
              with_client port (fun c ->
                  (match Net.rpc c Net.Ping with
                  | Net.Pong -> ()
                  | _ -> Alcotest.fail "expected pong");
                  let rows =
                    expect_rows "query"
                      (Net.rpc c (Net.Query (List.hd q_texts)))
                  in
                  let s = expect_stats "stats" (Net.rpc c Net.Stats) in
                  check_bool "request counted" true (s.Serve.served >= 1);
                  rows))
        in
        (* reference computed after the server thread is joined *)
        let local = (Serve.query server (List.hd q_asts)).Serve.rows in
        check_bool "network answer non-trivial" true (rows <> []);
        check_bool "bit-identical to the in-process path" true (rows = local));
    case "concurrent clients get answers bit-identical to run_batch"
      (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let texts = Array.of_list q_texts in
        let per_client = 9 in
        let n_clients = 4 in
        let answers =
          run_server server (fun port ->
              let results = Array.make n_clients [||] in
              let client k =
                with_client port (fun c ->
                    results.(k) <-
                      Array.init per_client (fun i ->
                          Net.rpc c
                            (Net.Query texts.((k + i) mod Array.length texts))))
              in
              let ths =
                Array.init n_clients (fun k -> Thread.create client k)
              in
              Array.iter Thread.join ths;
              results)
        in
        let reference =
          Serve.run_batch server (Array.of_list q_asts)
          |> Array.map (function
               | Ok (r : Serve.reply) -> r.Serve.rows
               | Error e -> Alcotest.failf "reference failed: %s" e)
        in
        Array.iteri
          (fun k per ->
            check_int (Printf.sprintf "client %d answered" k) per_client
              (Array.length per);
            Array.iteri
              (fun i resp ->
                let rows = expect_rows (Printf.sprintf "c%d q%d" k i) resp in
                check_bool
                  (Printf.sprintf "client %d request %d bit-identical" k i)
                  true
                  (rows = reference.((k + i) mod Array.length reference)))
              per)
          answers);
    case "pipelined appends share commit groups, one fsync per group"
      (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let server =
          Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc)
        in
        let text = Xml.to_string doc in
        (* max_group 4 under a wide deadline: flushes trigger on size
           alone, so the grouping is deterministic however the reads
           split — 8 pipelined appends, exactly 2 groups of 4 *)
        run_server ~group_commit_ms:10_000 ~max_group:4 server (fun port ->
            with_client port (fun c ->
                for _ = 1 to 8 do
                  Net.send c (Net.Append text)
                done;
                for i = 1 to 8 do
                  match Net.recv c with
                  | Net.Acked -> ()
                  | Net.Error_reply m ->
                      Alcotest.failf "append %d rejected: %s" i m
                  | _ -> Alcotest.failf "append %d: unexpected response" i
                done;
                let s = expect_stats "stats" (Net.rpc c Net.Stats) in
                check_int "appends acked" 8 s.Serve.wal_appends;
                check_int "in two groups" 2 s.Serve.wal_groups;
                check_int "one fsync each" 2 s.Serve.wal_fsyncs;
                check_int "of four appends" 4 s.Serve.wal_max_group;
                check_int "all pending" 8 s.Serve.pending_appends));
        (* the groups are real commits: a fresh process recovers all 8 *)
        let recovered, r = Serve.recover ~jobs:1 ~dir () in
        check_int "every acked append recovered" 8 r.Serve.r_replayed;
        check_int "as pending appends" 8
          (Serve.stats recovered).Serve.pending_appends;
        rm_rf dir);
    case "publish over the network flushes the open group first" (fun () ->
        let doc, m = setup () in
        let dir = tmp_dir () in
        let server =
          Serve.create ~jobs:1 ~data_dir:dir m (Shred.shred m doc)
        in
        let text = Xml.to_string doc in
        run_server ~group_commit_ms:10_000 ~max_group:64 server (fun port ->
            with_client port (fun c ->
                (* the appends sit in the open group (the deadline is
                   far, max_group farther) until the pipelined publish
                   arrives and must commit them before the barrier *)
                Net.send c (Net.Append text);
                Net.send c (Net.Append text);
                Net.send c Net.Publish;
                (match (Net.recv c, Net.recv c, Net.recv c) with
                | Net.Acked, Net.Acked, Net.Published -> ()
                | _ -> Alcotest.fail "expected acked, acked, published");
                let s = expect_stats "stats" (Net.rpc c Net.Stats) in
                check_int "one group of two" 2 s.Serve.wal_max_group;
                check_int "nothing pending" 0 s.Serve.pending_appends;
                check_int "one publish" 1 s.Serve.snapshots_published));
        rm_rf dir);
    case "per-request timeout degrades to an error slot over TCP" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        (* a zero budget trips at the first plan-block boundary under
           the real clock: deterministic, no sleeping *)
        run_server ~timeout_ms:0 server (fun port ->
            with_client port (fun c ->
                let m1 =
                  expect_error "query"
                    (Net.rpc c (Net.Query (List.hd q_texts)))
                in
                check_bool "names the timeout" true (contains m1 "timeout");
                (* the connection — and the server — survive it *)
                match Net.rpc c Net.Ping with
                | Net.Pong -> ()
                | _ -> Alcotest.fail "expected pong after the timeout")));
    case "bad requests poison only their own slot" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        run_server server (fun port ->
            with_client port (fun c ->
                (* one pipelined round: good, unparsable, untranslatable,
                   bad XML, good — answered positionally *)
                Net.send c (Net.Query (List.hd q_texts));
                Net.send c (Net.Query "THIS IS NOT XQUERY ((");
                Net.send c (Net.Query "FOR $v in imdb/nothing RETURN $v");
                Net.send c (Net.Append "<unclosed");
                Net.send c (Net.Query (List.hd q_texts));
                let r1 = Net.recv c in
                let e2 = expect_error "unparsable" (Net.recv c) in
                let e3 = expect_error "untranslatable" (Net.recv c) in
                let e4 = expect_error "bad xml" (Net.recv c) in
                let r5 = Net.recv c in
                check_bool "parse error named" true (contains e2 "parse");
                check_bool "untranslatable named" true
                  (contains e3 "untranslatable");
                check_bool "XML error named" true (contains e4 "XML");
                let rows1 = expect_rows "first" r1 in
                let rows5 = expect_rows "last" r5 in
                check_bool "answer non-trivial" true (rows1 <> []);
                check_bool "neighbors answered identically" true
                  (rows1 = rows5))));
    case "a corrupt frame: one error reply, clean close, server survives"
      (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        run_server server (fun port ->
            (* a flipped bit inside an otherwise valid frame *)
            with_client port (fun victim ->
                let frame =
                  Bytes.of_string
                    (Net.encode_request (Net.Query (List.hd q_texts)))
                in
                let i = Bytes.length frame - 2 in
                Bytes.set frame i
                  (Char.chr (Char.code (Bytes.get frame i) lxor 0x10));
                Net.send_raw victim (Bytes.to_string frame);
                let m1 = expect_error "flipped bit" (Net.recv victim) in
                check_bool "names the defect" true
                  (contains m1 "checksum" || contains m1 "malformed"
                 || contains m1 "magic");
                match Net.recv victim with
                | exception Net.Closed -> ()
                | exception Net.Protocol_error _ -> ()
                | _ -> Alcotest.fail "expected a clean disconnect");
            (* a garbage greeting: same contract, different defect *)
            with_client port (fun victim ->
                Net.send_raw victim "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
                let _ = expect_error "garbage" (Net.recv victim) in
                match Net.recv victim with
                | exception Net.Closed -> ()
                | exception Net.Protocol_error _ -> ()
                | _ -> Alcotest.fail "expected a clean disconnect");
            (* a client that dies mid-frame costs nothing *)
            let half = Net.connect ~port () in
            Net.send_raw half (String.sub (Net.encode_request Net.Ping) 0 5);
            Net.close half;
            (* other connections never noticed any of it *)
            with_client port (fun c ->
                let rows =
                  expect_rows "after the abuse"
                    (Net.rpc c (Net.Query (List.hd q_texts)))
                in
                check_bool "still serving" true (rows <> []))));
    case "a pipelined burst is answered as one shared batch" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let net_final = ref Net.net_stats_zero in
        let answers =
          run_server ~net_out:net_final server (fun port ->
              with_client port (fun c ->
                  (* all eight query frames land in one write, so the
                     server reads them in one tick and fans them out as
                     one run_batch *)
                  let blob =
                    String.concat ""
                      (List.init 8 (fun i ->
                           Net.encode_request
                             (Net.Query (List.nth q_texts (i mod 3)))))
                  in
                  Net.send_raw c blob;
                  List.init 8 (fun i ->
                      expect_rows (Printf.sprintf "q%d" i) (Net.recv c))))
        in
        let reference =
          List.map (fun ast -> (Serve.query server ast).Serve.rows) q_asts
        in
        List.iteri
          (fun i rows ->
            check_bool
              (Printf.sprintf "answer %d bit-identical" i)
              true
              (rows = List.nth reference (i mod 3)))
          answers;
        let net = !net_final in
        check_int "all eight were batched" 8 net.Net.batched_queries;
        check_bool "a shared batch formed" true (Net.shared_batches net >= 1);
        check_bool "histogram mass above 1" true (net.Net.max_batch >= 2);
        check_bool "run_batch saw the shared batch" true
          ((Serve.stats server).Serve.max_batch >= 2));
    case "multi-frame large payloads round-trip bit-exactly" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        (* request side: one append whose frame spans >= 4 read chunks *)
        let rec big_xml scale =
          let text =
            Xml.to_string
              (Imdb.Gen.generate
                 { (Imdb.Gen.scaled scale) with Imdb.Gen.seed = 7 })
          in
          if String.length text >= 4 * 65536 then text else big_xml (scale *. 2.)
        in
        let xml = big_xml 0.01 in
        (* response side: enough pipelined answers that the client's
           receive buffer spans >= 4 read chunks in one drain *)
        let q = List.nth q_asts 1 in
        let expected = (Serve.query server q).Serve.rows in
        let resp_len =
          String.length
            (Net.encode_response (Net.Rows { rows = expected; cached = false }))
        in
        let k = (4 * 65536 / resp_len) + 1 in
        run_server server (fun port ->
            with_client port (fun c ->
                (match Net.rpc c (Net.Append xml) with
                | Net.Acked -> ()
                | Net.Error_reply m ->
                    Alcotest.failf "large append rejected: %s" m
                | _ -> Alcotest.fail "large append: unexpected response");
                for _ = 1 to k do
                  Net.send c (Net.Query (List.nth q_texts 1))
                done;
                for i = 1 to k do
                  let rows =
                    expect_rows (Printf.sprintf "big drain %d" i) (Net.recv c)
                  in
                  check_bool
                    (Printf.sprintf "pipelined answer %d bit-identical" i)
                    true (rows = expected)
                done));
        check_bool "the append frame spans reads" true
          (String.length (Net.encode_request (Net.Append xml)) >= 4 * 65536);
        check_bool "the pipelined responses span reads" true
          (k * resp_len >= 4 * 65536));
    case "injected short writes deliver every response bit-exactly" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let answers =
          (* every server write moves at most 64 bytes, so each frame
             crosses many partial writes and ticks *)
          run_server ~max_write:64 server (fun port ->
              with_client port (fun c ->
                  Net.send c Net.Ping;
                  for _ = 1 to 5 do
                    Net.send c (Net.Query (List.hd q_texts))
                  done;
                  (match Net.recv c with
                  | Net.Pong -> ()
                  | _ -> Alcotest.fail "expected pong first");
                  List.init 5 (fun i ->
                      expect_rows (Printf.sprintf "short-write %d" i)
                        (Net.recv c))))
        in
        let local = (Serve.query server (List.hd q_asts)).Serve.rows in
        check_bool "answers non-trivial" true (local <> []);
        List.iteri
          (fun i rows ->
            check_bool
              (Printf.sprintf "tail preserved bit-exactly (response %d)" i)
              true (rows = local))
          answers);
    case "a slow reader buffers across ticks while others are served"
      (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let n_slow = 40 in
        let slow_answers =
          (* 1 KiB per write: the slow connection's 40 pipelined answers
             sit in its output buffer across many ticks, and the second
             connection must keep being served meanwhile *)
          run_server ~max_write:1024 server (fun port ->
              let slow = Net.connect ~port () in
              Fun.protect ~finally:(fun () -> Net.close slow) @@ fun () ->
              for _ = 1 to n_slow do
                Net.send slow (Net.Query (List.nth q_texts 1))
              done;
              with_client port (fun b ->
                  for i = 1 to 10 do
                    match Net.rpc b Net.Ping with
                    | Net.Pong -> ()
                    | _ ->
                        Alcotest.failf
                          "connection starved behind the slow reader (ping %d)"
                          i
                  done);
              List.init n_slow (fun i ->
                  expect_rows (Printf.sprintf "slow %d" i) (Net.recv slow)))
        in
        let local = (Serve.query server (List.nth q_asts 1)).Serve.rows in
        List.iteri
          (fun i rows ->
            check_bool
              (Printf.sprintf "slow answer %d bit-identical, in order" i)
              true (rows = local))
          slow_answers);
    case "idle connections are reaped, busy and owed ones are not" (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let net_final = ref Net.net_stats_zero in
        run_server ~idle_timeout_ms:60 ~net_out:net_final server (fun port ->
            with_client port (fun busy ->
                (* a connection that keeps moving bytes outlives many
                   idle windows *)
                let until = Unix.gettimeofday () +. 0.25 in
                while Unix.gettimeofday () < until do
                  (match Net.rpc busy Net.Ping with
                  | Net.Pong -> ()
                  | _ -> Alcotest.fail "busy connection broke");
                  Thread.delay 0.01
                done);
            let idle = Net.connect ~port () in
            Fun.protect ~finally:(fun () -> Net.close idle) @@ fun () ->
            (match Net.rpc idle Net.Ping with
            | Net.Pong -> ()
            | _ -> Alcotest.fail "expected pong");
            Thread.delay 0.3;
            match Net.recv idle with
            | exception Net.Closed -> ()
            | exception Net.Protocol_error _ -> ()
            | _ -> Alcotest.fail "expected the idle connection reaped");
        check_bool "the reap was counted" true
          (!net_final.Net.idle_reaped >= 1));
    case "the listener parks at max-conns and resumes as slots free"
      (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let net_final = ref Net.net_stats_zero in
        run_server ~max_conns:2 ~net_out:net_final server (fun port ->
            let c1 = Net.connect ~port () in
            let c2 = Net.connect ~port () in
            (match (Net.rpc c1 Net.Ping, Net.rpc c2 Net.Ping) with
            | Net.Pong, Net.Pong -> ()
            | _ -> Alcotest.fail "expected pongs at capacity");
            (* the third peer's handshake completes in the kernel
               backlog, but the parked listener never accepts it *)
            let c3 = Net.connect ~port () in
            Fun.protect ~finally:(fun () -> Net.close c3) @@ fun () ->
            Net.send c3 Net.Ping;
            Thread.delay 0.1;
            let net = expect_net_stats "stats" (Net.rpc c1 Net.Stats) in
            check_int "only two accepted while full" 2 net.Net.accepted;
            check_bool "the full house was counted" true
              (net.Net.at_capacity >= 1);
            Net.close c1;
            Net.close c2;
            (* with slots free the backlogged peer is accepted and its
               buffered ping answered *)
            match Net.recv c3 with
            | Net.Pong -> ()
            | _ -> Alcotest.fail "expected pong once a slot freed");
        check_int "the third peer was eventually accepted" 3
          !net_final.Net.accepted);
    case "interleaved multi-connection traffic keeps per-connection order"
      (fun () ->
        let doc, m = setup () in
        let server = Serve.create ~jobs:2 m (Shred.shred m doc) in
        let texts = Array.of_list q_texts in
        let expected =
          Array.of_list
            (List.map (fun ast -> (Serve.query server ast).Serve.rows) q_asts)
        in
        run_server server (fun port ->
            (* each connection runs its own random script; rounds
               interleave the sends across connections before any
               response is read, so the server sees them mixed — every
               connection must still get the sequential client's
               answers in its own request order *)
            let gen =
              QCheck2.Gen.(
                list_size (int_range 1 4)
                  (list_size (int_range 0 6)
                     (int_range 0 (Array.length texts - 1))))
            in
            QCheck2.Test.check_exn
              (QCheck2.Test.make ~name:"per-connection order" ~count:15 gen
                 (fun scripts ->
                   let conns =
                     List.map (fun _ -> Net.connect ~port ()) scripts
                   in
                   Fun.protect
                     ~finally:(fun () -> List.iter Net.close conns)
                     (fun () ->
                       let rounds =
                         List.fold_left
                           (fun acc s -> max acc (List.length s))
                           0 scripts
                       in
                       for r = 0 to rounds - 1 do
                         List.iter2
                           (fun c s ->
                             match List.nth_opt s r with
                             | Some qi -> Net.send c (Net.Query texts.(qi))
                             | None -> ())
                           conns scripts
                       done;
                       List.for_all2
                         (fun c s ->
                           List.for_all
                             (fun qi ->
                               match Net.recv c with
                               | Net.Rows { rows; _ } -> rows = expected.(qi)
                               | _ -> false)
                             s)
                         conns scripts)))));
  ]

(* ------------------------------------------------------------------ *)
(* properties: the frame codec under fuzzing                           *)
(* ------------------------------------------------------------------ *)

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return Rtype.V_null;
        map (fun n -> Rtype.V_int n) int;
        map
          (fun s -> Rtype.V_string s)
          (string_size ~gen:char (int_range 0 12));
      ])

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Net.Query s) (string_size ~gen:char (int_range 0 64));
        map (fun s -> Net.Append s) (string_size ~gen:char (int_range 0 64));
        return Net.Publish;
        return Net.Stats;
        return Net.Ping;
      ])

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun rows cached -> Net.Rows { rows; cached })
          (list_size (int_range 0 5) (list_size (int_range 0 4) gen_value))
          bool;
        return Net.Acked;
        return Net.Published;
        map3
          (fun serve_ints net_ints (hist, (select_s, work_s)) ->
            match (serve_ints, net_ints) with
            | ( [ a; b; c; d; e; f; g; h; i; j; k; l ],
                [
                  ticks;
                  batches;
                  batched_queries;
                  max_batch;
                  replayed;
                  bytes_in;
                  bytes_out;
                  accepted;
                  idle_reaped;
                  at_capacity;
                ] ) ->
                Net.Stats_reply
                  {
                    serve =
                      {
                        Serve.served = a;
                        cache_hits = b;
                        cache_misses = c;
                        snapshot_rows = d;
                        snapshots_published = e;
                        pending_appends = f;
                        wal_appends = g;
                        wal_fsyncs = h;
                        wal_groups = i;
                        wal_max_group = j;
                        batches = k;
                        max_batch = l;
                      };
                    net =
                      {
                        Net.ticks;
                        batches;
                        batched_queries;
                        batch_hist = Array.of_list hist;
                        max_batch;
                        replayed;
                        bytes_in;
                        bytes_out;
                        select_s;
                        work_s;
                        accepted;
                        idle_reaped;
                        at_capacity;
                      };
                  }
            | _ -> assert false)
          (list_repeat 12 (int_range 0 1_000_000))
          (list_repeat 10 (int_range 0 1_000_000))
          (pair
             (list_repeat Net.hist_buckets (int_range 0 1_000_000))
             (pair (float_bound_inclusive 1000.) (float_bound_inclusive 1000.)));
        return Net.Pong;
        map
          (fun s -> Net.Error_reply s)
          (string_size ~gen:char (int_range 0 64));
      ])

let flip_bit s pos bit =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.to_string b

(* decode one frame through the streaming extractor, as the peer does *)
let decode_frame decode bytes =
  match Net.extract bytes with
  | `Frame (payload, "") -> Some (decode payload)
  | _ -> None

let prop_request_roundtrip =
  prop "request frames round-trip bit-exactly" ~count:100 gen_request
    (fun r ->
      let bytes = Net.encode_request r in
      match decode_frame Net.decode_request bytes with
      | Some r' -> r = r' && String.equal (Net.encode_request r') bytes
      | None -> false)

let prop_response_roundtrip =
  prop "response frames round-trip bit-exactly" ~count:100 gen_response
    (fun r ->
      let bytes = Net.encode_response r in
      match decode_frame Net.decode_response bytes with
      | Some r' -> r = r' && String.equal (Net.encode_response r') bytes
      | None -> false)

let prop_bit_flip =
  prop "any single bit flip of a frame is rejected, never re-parsed"
    ~count:200
    QCheck2.Gen.(triple gen_request (int_range 0 1_000_000) (int_range 0 7))
    (fun (r, pos, bit) ->
      let bytes = Net.encode_request r in
      let flipped = flip_bit bytes (pos mod String.length bytes) bit in
      match Net.extract flipped with
      | `Broken _ -> true
      | `Partial -> true (* a grown length field: the peer times out *)
      | `Frame _ -> false)

let prop_truncation =
  prop "every strict prefix of a frame is Partial — wait, never guess"
    ~count:100
    QCheck2.Gen.(pair gen_request (int_range 0 1_000_000))
    (fun (r, cut) ->
      let bytes = Net.encode_request r in
      let prefix = String.sub bytes 0 (cut mod String.length bytes) in
      match Net.extract prefix with `Partial -> true | _ -> false)

let prop_garbage_prefix =
  prop "a garbage prefix never yields a parsed frame" ~count:100
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 1 40)) gen_request)
    (fun (garbage, r) ->
      match Net.extract (garbage ^ Net.encode_request r) with
      | `Broken _ | `Partial -> true
      | `Frame _ -> false)

let props =
  [
    prop_request_roundtrip;
    prop_response_roundtrip;
    prop_bit_flip;
    prop_truncation;
    prop_garbage_prefix;
  ]
