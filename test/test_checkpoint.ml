(* Durable checkpoint/resume.  Two families of contracts:

   - the codec: encode/decode is the identity (statistics annotations
     and float bit-patterns included), the bytes are deterministic, and
     every damaged file — truncated, bit-flipped, wrong version, wrong
     magic — is rejected with [Checkpoint.Corrupt] and a one-line
     message, never a crash or a silent restart;

   - resume: stopping a search at any point and resuming the snapshot
     is bit-identical (cost, schema, trace, stopped reason, failure
     records) to never having stopped, for greedy and beam, for jobs 1
     and 2, warm or cold, including a double stop and faults injected
     before the snapshot. *)

open Legodb
open Test_util

let prop name ?(count = 30) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let prefix n l = List.filteri (fun i _ -> i < n) l
let tmp_ckpt () = Filename.temp_file "legodb_test" ".ckpt"

let fkey (f : Search.failure) =
  ( f.Search.f_iteration,
    Format.asprintf "%a" Space.pp_step f.Search.f_step,
    f.Search.f_stage,
    f.Search.f_class )

let same_failures a b = List.map fkey a = List.map fkey b

(* bit-identical including the stop reason and the failure records —
   the full resume contract, one notch stricter than Test_par's *)
let check_resumed name (full : Search.result) (resumed : Search.result) =
  Test_par.check_bit_identical name full resumed;
  check_bool (name ^ ": same stop reason") true
    (full.Search.stopped = resumed.Search.stopped);
  check_bool (name ^ ": same failure records") true
    (same_failures full.Search.failures resumed.Search.failures)

(* ---------------- codec ---------------- *)

(* ingredients for arbitrary states: schemas with statistics
   annotations (imdb), wildcards (section2), and none (books); every
   step constructor; float edge cases beyond what searches produce *)
let schema_pool =
  lazy
    (let annotated = Lazy.force annotated_imdb in
     let inl = Init.all_inlined annotated in
     let out = Init.all_outlined annotated in
     let nb =
       match Space.neighbors ~kinds:[ Space.K_outline ] inl with
       | (_, s) :: _ -> s
       | [] -> inl
     in
     [| inl; out; nb; books_schema; Imdb.Schema.section2 |])

let steps_pool =
  [|
    Space.Inline { tname = "A"; loc = [ 0; 1 ]; target = "B'" };
    Space.Outline { tname = "Show"; loc = []; tag = "aka" };
    Space.Union_dist { tname = "U"; loc = [ 2 ] };
    Space.Union_factor { tname = "U"; loc = [ 0; 0; 1 ] };
    Space.Rep_split { tname = "R"; loc = [ 1 ]; target = "R'Part1" };
    Space.Rep_merge { tname = "R"; loc = [] };
    Space.Wildcard { tname = "W"; loc = [ 3; 4 ]; tag = "w_tag" };
    Space.Union_opts { tname = "U"; loc = [ 5 ] };
  |]

let float_edges =
  [| 0.; -0.; infinity; neg_infinity; nan; 4.9e-324; Float.max_float; 0.1 |]

(* a deterministic state built from a seed plus generator-supplied
   floats and (arbitrary-byte) strings *)
let state_of (seed, floats, strs) =
  let rng = Random.State.make [| seed |] in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  let fl () =
    match floats with
    | [] -> pick float_edges
    | l -> List.nth l (Random.State.int rng (List.length l))
  in
  let str () =
    match strs with
    | [] -> "s"
    | l -> List.nth l (Random.State.int rng (List.length l))
  in
  let pool = Lazy.force schema_pool in
  let failure () =
    {
      Search.f_iteration = Random.State.int rng 10;
      f_step = pick steps_pool;
      f_stage = pick [| "mapping"; "translate"; "optimize"; "inject" |];
      f_class = str ();
      f_message = str ();
    }
  in
  let snapshot () =
    {
      Cost_engine.empty_snapshot with
      Cost_engine.evaluations = Random.State.int rng 500;
      hits = Random.State.int rng 500;
      t_optimize = fl ();
    }
  in
  let entry i =
    {
      Search.iteration = i;
      cost = fl ();
      step = (if Random.State.bool rng then Some (pick steps_pool) else None);
      tables = Random.State.int rng 40;
      engine = snapshot ();
      failures = List.init (Random.State.int rng 3) (fun _ -> failure ());
    }
  in
  let point =
    if Random.State.bool rng then
      Checkpoint.Greedy
        {
          g_schema = pick pool;
          g_cost = fl ();
          g_threshold = Random.State.float rng 0.5;
        }
    else
      Checkpoint.Beam
        {
          b_frontier =
            List.init
              (Random.State.int rng 3)
              (fun _ -> (pick pool, fl ()));
          b_best_schema = pick pool;
          b_best_cost = fl ();
          b_seen = List.init (Random.State.int rng 4) (fun _ -> str ());
          b_barren = Random.State.int rng 3;
          b_width = 1 + Random.State.int rng 6;
          b_patience = 1 + Random.State.int rng 4;
        }
  in
  {
    Checkpoint.strategy =
      pick [| "greedy"; "greedy_so"; "greedy_si"; "beam" |];
    kinds = List.filteri (fun i _ -> i <= seed mod 8) Space.all_kinds;
    max_iterations = Random.State.int rng 300;
    iteration = Random.State.int rng 50;
    evaluations = Random.State.int rng 5000;
    trace = List.init (1 + Random.State.int rng 3) entry;
    failures = List.init (Random.State.int rng 3) (fun _ -> failure ());
    point;
    cache = List.map (fun s -> (s, fl ())) (List.sort_uniq compare strs);
  }

let gen_state =
  QCheck2.Gen.(
    map state_of
      (triple (int_range 0 10_000)
         (list_size (int_range 0 4)
            (oneof [ float; oneofl (Array.to_list float_edges) ]))
         (list_size (int_range 0 3) (string_size ~gen:char (int_range 0 12)))))

(* a moderately rich image for the damage tests *)
let image = lazy (Checkpoint.encode (state_of (7, [ 0.125; nan ], [ "k\n\x00" ])))

let flip_bit s pos bit =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.to_string b

(* damaged images must fail with Corrupt and a one-line message — any
   other outcome (success, another exception) fails the property *)
let rejects ?expect img =
  match Checkpoint.decode img with
  | _ -> false
  | exception Checkpoint.Corrupt m -> (
      (not (String.contains m '\n'))
      && match expect with None -> true | Some sub -> contains m sub)
  | exception _ -> false

let suite =
  [
    prop "codec round-trips arbitrary states bit-exactly" gen_state (fun st ->
        let st' = Checkpoint.decode (Checkpoint.encode st) in
        Checkpoint.equal st st'
        (* and the bytes are deterministic: re-encoding the decoded
           state reproduces the image *)
        && String.equal (Checkpoint.encode st) (Checkpoint.encode st'));
    prop "any single bit flip is rejected as Corrupt" ~count:60
      QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 7))
      (fun (pos, bit) ->
        let img = Lazy.force image in
        rejects (flip_bit img (pos mod String.length img) bit));
    prop "any truncation is rejected as Corrupt" ~count:40
      QCheck2.Gen.(int_range 0 1_000_000)
      (fun n ->
        let img = Lazy.force image in
        rejects (String.sub img 0 (n mod String.length img)));
    case "damage classes get distinct one-line errors" (fun () ->
        let img = Lazy.force image in
        let payload =
          String.sub img
            (String.index img '\n' + 1)
            (String.length img - String.index img '\n' - 1)
        in
        (* forged headers carry a *valid* CRC, so each case isolates
           one check: magic, then version, then length, then checksum *)
        let forge magic version =
          Printf.sprintf "%s %d %08lx %d\n%s" magic version
            (Checkpoint.crc32 payload) (String.length payload) payload
        in
        check_bool "wrong magic" true
          (rejects ~expect:"magic" (forge "NOTADB-CKPT" 1));
        check_bool "wrong version" true
          (rejects ~expect:"version" (forge "LEGODB-CKPT" 99));
        check_bool "truncated" true
          (rejects ~expect:"truncated" (String.sub img 0 200));
        check_bool "bit flip in payload" true
          (rejects ~expect:"checksum" (flip_bit img (String.length img - 5) 0));
        check_bool "empty file" true (rejects ""));
    case "save is atomic and loads back equal" (fun () ->
        let st = state_of (42, [ 1.5 ], [ "k" ]) in
        let path = tmp_ckpt () in
        Checkpoint.save ~path st;
        check_bool "no tmp file left" false (Sys.file_exists (path ^ ".tmp"));
        check_bool "loads equal" true (Checkpoint.equal st (Checkpoint.load path));
        (* overwriting an existing snapshot also goes through the
           tmp+rename path *)
        let st2 = state_of (43, [ 2.5 ], [ "j" ]) in
        Checkpoint.save ~path st2;
        check_bool "overwrite loads the new state" true
          (Checkpoint.equal st2 (Checkpoint.load path));
        Sys.remove path);
    (* ---------------- crash–resume differential ---------------- *)
    case "greedy stop-at-k then resume is bit-identical (jobs 1 and 2)"
      (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let full = Search.greedy_si ~max_iterations:3 ~workload schema in
        List.iter
          (fun jobs ->
            List.iter
              (fun k ->
                let path = tmp_ckpt () in
                let stopped =
                  Search.greedy_si ~max_iterations:3 ~jobs
                    ~budget:(Budget.create ~max_iterations:k ())
                    ~checkpoint:(path, 1) ~workload schema
                in
                check_string
                  (Printf.sprintf "j%d k%d stops on iterations" jobs k)
                  "iterations"
                  (Search.stopped_string stopped.Search.stopped);
                check_bool "stopped run is a prefix" true
                  (Test_par.same_trace stopped.Search.trace
                     (prefix (k + 1) full.Search.trace));
                let resumed = Search.resume ~jobs ~workload path in
                check_resumed
                  (Printf.sprintf "greedy j%d k%d" jobs k)
                  full resumed;
                Sys.remove path)
              [ 1; 2 ])
          [ 1; 2 ]);
    case "greedy evaluation-budget stop mid-iteration resumes exactly"
      (fun () ->
        (* the abandoned iteration drew a nondeterministic number of
           tickets; the snapshot must hold the barrier count, so the
           resumed run re-runs that iteration from scratch *)
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let full = Search.greedy_si ~max_iterations:3 ~workload schema in
        List.iter
          (fun evals ->
            let path = tmp_ckpt () in
            let stopped =
              Search.greedy_si ~max_iterations:3
                ~budget:(Budget.create ~max_evaluations:evals ())
                ~checkpoint:(path, 1) ~workload schema
            in
            check_string "stops on the evaluation budget" "cost_budget"
              (Search.stopped_string stopped.Search.stopped);
            let resumed = Search.resume ~workload path in
            check_resumed (Printf.sprintf "evals=%d" evals) full resumed;
            Sys.remove path)
          [ 7; 30 ]);
    case "beam stop-at-k then resume is bit-identical (jobs 1 and 2)"
      (fun () ->
        let workload = Imdb.Workloads.lookup in
        let start = Init.all_inlined (Lazy.force annotated_imdb) in
        let run ?jobs ?budget ?checkpoint () =
          Search.beam ?jobs ?budget ?checkpoint ~width:3 ~patience:1
            ~max_iterations:3 ~kinds:[ Space.K_outline ] ~workload start
        in
        let full = run () in
        List.iter
          (fun jobs ->
            let path = tmp_ckpt () in
            let _ =
              run ~jobs
                ~budget:(Budget.create ~max_iterations:1 ())
                ~checkpoint:(path, 1) ()
            in
            let resumed = Search.resume ~jobs ~workload path in
            check_resumed (Printf.sprintf "beam j%d" jobs) full resumed;
            (* and an evaluation-budget stop mid-level *)
            let _ =
              run ~jobs
                ~budget:(Budget.create ~max_evaluations:9 ())
                ~checkpoint:(path, 1) ()
            in
            let resumed =
              Search.resume ~jobs ~workload path
            in
            check_resumed (Printf.sprintf "beam j%d evals" jobs) full resumed;
            Sys.remove path)
          [ 1; 2 ]);
    case "double stop/resume equals one uninterrupted run" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let full = Search.greedy_si ~max_iterations:3 ~workload schema in
        let path = tmp_ckpt () in
        let _ =
          Search.greedy_si ~max_iterations:3
            ~budget:(Budget.create ~max_iterations:1 ())
            ~checkpoint:(path, 1) ~workload schema
        in
        (* second leg: resume, stop again one iteration later (the cap
           is absolute, so max_iterations 2 runs exactly one more) *)
        let leg2 =
          Search.resume
            ~budget:(Budget.create ~max_iterations:2 ())
            ~checkpoint:(path, 1) ~workload path
        in
        check_string "second leg stops on iterations" "iterations"
          (Search.stopped_string leg2.Search.stopped);
        check_int "second leg completed one more iteration" 3
          (List.length leg2.Search.trace);
        let final = Search.resume ~workload path in
        check_resumed "double resume" full final;
        Sys.remove path);
    case "warm and cold resume are bit-identical" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let full = Search.greedy_si ~max_iterations:3 ~workload schema in
        let path = tmp_ckpt () in
        let _ =
          Search.greedy_si ~max_iterations:3
            ~budget:(Budget.create ~max_iterations:1 ())
            ~checkpoint:(path, 1) ~workload schema
        in
        let warm = Search.resume ~workload path in
        let cold = Search.resume ~warm:false ~workload path in
        check_resumed "warm" full warm;
        check_resumed "cold" full cold;
        (* the seeded memo table only changes the accounting: a warm
           resume recomputes no more statements than a cold one *)
        check_bool "warm misses <= cold misses" true
          (warm.Search.engine.Cost_engine.misses
          <= cold.Search.engine.Cost_engine.misses);
        Sys.remove path);
    case "pre-snapshot injected faults are not replayed on resume"
      (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Init.all_inlined (Lazy.force annotated_imdb) in
        let init_s = Xschema.to_string schema in
        let inject s =
          (not (String.equal s init_s)) && Hashtbl.hash s mod 3 = 0
        in
        let kinds = [ Space.K_outline ] in
        let mk_eng () = Cost_engine.create ~workload ~inject () in
        let full =
          Search.greedy ~kinds ~max_iterations:3 ~engine:(mk_eng ())
            ~workload schema
        in
        check_bool "fixture injects faults" true (full.Search.failures <> []);
        let path = tmp_ckpt () in
        let stopped =
          Search.greedy ~kinds ~max_iterations:3 ~engine:(mk_eng ())
            ~budget:(Budget.create ~max_iterations:1 ())
            ~checkpoint:(path, 1) ~workload schema
        in
        (* the resumed engine re-injects deterministically; faults from
           completed iterations come from the snapshot and must appear
           exactly once *)
        let resumed = Search.resume ~engine:(mk_eng ()) ~workload path in
        check_resumed "inject" full resumed;
        check_int "no duplicated failure records"
          (List.length full.Search.failures)
          (List.length resumed.Search.failures);
        check_bool "snapshot-era faults preserved" true
          (same_failures stopped.Search.failures
             (prefix
                (List.length stopped.Search.failures)
                resumed.Search.failures));
        (* PR 3's fault-equivalence oracle: the resumed search selects
           exactly what a search over the surviving candidates would *)
        let eng = Cost_engine.create ~workload () in
        let rec go it s c =
          if it >= 3 then (s, c)
          else
            let survivors =
              List.filter
                (fun (_, s') -> not (inject (Xschema.to_string s')))
                (Space.neighbors ~kinds s)
            in
            let best =
              List.fold_left
                (fun best (_, s') ->
                  match Cost_engine.cost_opt eng s' with
                  | None -> best
                  | Some c' -> (
                      match best with
                      | Some (_, bc) when bc <= c' -> best
                      | _ -> Some (s', c')))
                None survivors
            in
            match best with
            | Some (s', c') when c' < c -> go (it + 1) s' c'
            | _ -> (s, c)
        in
        let ref_schema, ref_cost = go 0 schema (Cost_engine.cost eng schema) in
        check_string "oracle schema"
          (Xschema.to_string ref_schema)
          (Xschema.to_string resumed.Search.schema);
        check_bool "oracle cost" true
          (Float.equal ref_cost resumed.Search.cost);
        Sys.remove path);
    prop "stop anywhere, resume: bit-identical for random budgets" ~count:5
      QCheck2.Gen.(
        triple bool (oneofl [ 1; 2 ]) (int_range 1 40))
      (fun (use_beam, jobs, evals) ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let run ?budget ?checkpoint ~jobs () =
          if use_beam then
            Search.beam ~jobs ?budget ?checkpoint ~width:3 ~patience:1
              ~max_iterations:2 ~kinds:[ Space.K_outline ] ~workload
              (Init.all_inlined schema)
          else
            Search.greedy_si ~jobs ?budget ?checkpoint ~max_iterations:3
              ~workload schema
        in
        let full = run ~jobs:1 () in
        let path = tmp_ckpt () in
        let _ =
          run ~jobs
            ~budget:(Budget.create ~max_evaluations:evals ())
            ~checkpoint:(path, 1) ()
        in
        let resumed = Search.resume ~jobs ~workload path in
        Sys.remove path;
        Float.equal full.Search.cost resumed.Search.cost
        && String.equal
             (Xschema.to_string full.Search.schema)
             (Xschema.to_string resumed.Search.schema)
        && Test_par.same_trace full.Search.trace resumed.Search.trace
        && full.Search.stopped = resumed.Search.stopped
        && same_failures full.Search.failures resumed.Search.failures);
    (* ---------------- per-query cost timeout ---------------- *)
    case "per-query timeout faults the configuration as optimize" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Init.all_inlined (Lazy.force annotated_imdb) in
        (* fake clock: 0.5 ms per reading, so every statement "takes"
           0.5 ms — over a 0.1 ms limit, under a 1 s one *)
        let mk limit =
          let t = ref 0. in
          Cost_engine.create ~workload ?per_query_timeout_ms:limit
            ~clock:(fun () ->
              t := !t +. 0.0005;
              !t)
            ()
        in
        (match Cost_engine.cost_result (mk (Some 1000.)) schema with
        | Ok _ -> ()
        | Error f -> Alcotest.failf "unexpected fault: %s" f.Cost_engine.message);
        (match Cost_engine.cost_result (mk None) schema with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "no timeout set, nothing may fault");
        let slow = mk (Some 0.1) in
        (match Cost_engine.cost_result slow schema with
        | Ok _ -> Alcotest.fail "expected a Cost_timeout fault"
        | Error f ->
            check_string "stage" "optimize" f.Cost_engine.stage;
            check_string "class" "Cost_timeout" f.Cost_engine.exn_class;
            check_bool "message names the overrun" true
              (contains f.Cost_engine.message "timeout"));
        check_int "fault counted" 1
          (Cost_engine.snapshot slow).Cost_engine.faults);
    case "a pathological query charges one fault, not the whole budget"
      (fun () ->
        let workload = Imdb.Workloads.lookup in
        let schema = Lazy.force annotated_imdb in
        let inlined = Init.all_inlined schema in
        (* the clock is tame while the initial configuration is costed,
           then every statement costing overruns the 5 ms limit *)
        let t = ref 0. in
        let armed = ref false in
        let eng =
          Cost_engine.create ~workload ~per_query_timeout_ms:5.
            ~clock:(fun () ->
              t := !t +. (if !armed then 0.02 else 1e-9);
              !t)
            ()
        in
        ignore (Cost_engine.cost eng inlined);
        armed := true;
        let b = Budget.create ~max_evaluations:1000 () in
        let r = Search.greedy_si ~budget:b ~engine:eng ~workload schema in
        (* every neighbor faults on its first fresh statement, so the
           search converges on the initial configuration immediately
           instead of burning wall-clock between ?check polls *)
        check_string "reason" "converged"
          (Search.stopped_string r.Search.stopped);
        check_string "initial configuration kept"
          (Xschema.to_string inlined)
          (Xschema.to_string r.Search.schema);
        check_bool "failures recorded" true (r.Search.failures <> []);
        List.iter
          (fun (f : Search.failure) ->
            check_string "stage" "optimize" f.Search.f_stage;
            check_string "class" "Cost_timeout" f.Search.f_class)
          r.Search.failures;
        check_int "faults counted in the snapshot"
          (List.length r.Search.failures)
          r.Search.engine.Cost_engine.faults;
        check_bool "budget barely touched" true (Budget.evaluations b < 100));
  ]
