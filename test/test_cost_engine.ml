(* The incremental cost engine: pure memoization, so a warm engine and
   the uncached reference must agree bit for bit on every configuration,
   whatever workload and whatever sequence of rewriting steps led
   there. *)

open Legodb
open Test_util

let all_queries = [| 8; 9; 11; 12; 13; 15; 16; 17 |]

let insert_actor =
  lazy (Xq_parse.parse_update ~name:"new-actor" "INSERT imdb/actor")

let prop name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* one random trajectory: a sub-workload, a start configuration and a
   random walk through the rewriting space; every visited configuration
   is costed twice through one shared engine (cold, then cached) and
   once through the uncached reference *)
let gen_trajectory =
  QCheck2.Gen.(
    triple
      (list_size (int_range 1 4) (int_range 0 (Array.length all_queries - 1)))
      (int_range 0 0xFFFF) bool)

let run_trajectory (picks, seed, with_updates) =
  let queries =
    List.sort_uniq compare picks
    |> List.map (fun i -> Imdb.Queries.q all_queries.(i))
  in
  let workload = Workload.of_queries queries in
  let updates = if with_updates then [ (Lazy.force insert_actor, 3.) ] else [] in
  let eng = Cost_engine.create ~updates ~workload () in
  let rng = Random.State.make [| seed |] in
  let check schema =
    let reference =
      match Search.pschema_cost ~updates ~workload schema with
      | c -> Some c
      | exception Search.Cost_error _ -> None
    in
    let cached = Cost_engine.cost_opt eng schema in
    let again = Cost_engine.cost_opt eng schema in
    match (reference, cached, again) with
    | Some r, Some c, Some c' ->
        if not (Float.equal r c && Float.equal c c') then
          QCheck2.Test.fail_reportf
            "engine diverges from reference: %h vs %h (revisit %h)" c r c'
    | None, None, None -> ()
    | _ ->
        QCheck2.Test.fail_reportf
          "engine and reference disagree on costability"
  in
  let rec walk schema n =
    check schema;
    if n > 0 then
      match Space.neighbors schema with
      | [] -> ()
      | nb ->
          (* re-check a random already-visited neighbour too: exercises
             cache hits on configurations one step away *)
          let pick l = List.nth l (Random.State.int rng (List.length l)) in
          check (snd (pick nb));
          walk (snd (pick nb)) (n - 1)
  in
  let start =
    if Random.State.bool rng then Init.all_inlined (Lazy.force annotated_imdb)
    else Init.all_outlined (Lazy.force annotated_imdb)
  in
  walk start 4;
  (* the walk revisits configurations on purpose, so the cache must
     have been exercised *)
  (Cost_engine.snapshot eng).Cost_engine.hits > 0

let suite =
  [
    prop "cached cost = cold cost on random trajectories" ~count:50
      gen_trajectory run_trajectory;
    case "oracle mode accepts a full greedy_si run" (fun () ->
        (* oracle mode recomputes every hit and raises on the first
           cached float that differs from a fresh evaluation *)
        let workload = Imdb.Workloads.mixed 0.5 in
        let eng = Cost_engine.create ~oracle:true ~workload () in
        let r =
          Search.greedy_si ~engine:eng ~workload
            (Lazy.force annotated_imdb)
        in
        let r_ref =
          Search.greedy_si ~memoize:false ~workload
            (Lazy.force annotated_imdb)
        in
        check_bool "same cost as the uncached search" true
          (Float.equal r.Search.cost r_ref.Search.cost);
        check_bool "cache was exercised" true
          (Cost_engine.hit_rate r.Search.engine > 0.5));
    case "a shared engine makes a re-run all hits" (fun () ->
        let workload = Imdb.Workloads.lookup in
        let eng = Cost_engine.create ~workload () in
        let r1 = Search.greedy_si ~engine:eng ~workload (Lazy.force annotated_imdb) in
        let r2 = Search.greedy_si ~engine:eng ~workload (Lazy.force annotated_imdb) in
        check_bool "identical cost" true (Float.equal r1.Search.cost r2.Search.cost);
        check_bool "re-run never misses" true
          (r2.Search.engine.Cost_engine.misses = 0
          && r2.Search.engine.Cost_engine.hits > 0));
    case "step-order-independent keys: beam revisits hit" (fun () ->
        let workload = Imdb.Workloads.publish in
        let r = Search.beam ~workload (Init.all_inlined (Lazy.force annotated_imdb)) in
        check_bool "beam hit rate above one half" true
          (Cost_engine.hit_rate r.Search.engine > 0.5));
    case "memoize:false still reports engine totals" (fun () ->
        let workload = Imdb.Workloads.publish in
        let r =
          Search.greedy_si ~memoize:false ~workload (Lazy.force annotated_imdb)
        in
        let s = r.Search.engine in
        check_bool "no cache traffic" true (s.Cost_engine.hits = 0 && s.Cost_engine.misses = 0);
        check_bool "configurations still counted" true (s.Cost_engine.evaluations > 0));
    case "greedy_si forwards max_iterations" (fun () ->
        let workload = Imdb.Workloads.mixed 0.5 in
        let r =
          Search.greedy_si ~max_iterations:0 ~workload
            (Lazy.force annotated_imdb)
        in
        check_int "no iterations taken" 1 (List.length r.Search.trace));
    case "greedy_so forwards kinds" (fun () ->
        (* all-outlined with only outline steps available: nothing to
           do, so the initial configuration must be returned *)
        let workload = Imdb.Workloads.publish in
        let r =
          Search.greedy_so
            ~kinds:[ Space.K_outline ]
            ~workload
            (Lazy.force annotated_imdb)
        in
        check_int "no inlining happened" 1 (List.length r.Search.trace));
  ]
