let () =
  Alcotest.run "legodb"
    [
      ("xml", Test_xml.suite);
      ("xtype", Test_xtype.suite);
      ("xschema", Test_xschema.suite);
      ("xtype-parse", Test_xtype_parse.suite);
      ("xsd", Test_xsd.suite);
      ("validate", Test_validate.suite);
      ("stats", Test_stats.suite);
      ("pschema", Test_pschema.suite);
      ("transform", Test_transform.suite);
      ("init", Test_init.suite);
      ("relational", Test_relational.suite);
      ("optimizer", Test_optimizer.suite);
      ("optimizer-perf", Test_optimizer_perf.suite);
      ("xquery", Test_xquery.suite);
      ("mapping", Test_mapping.suite);
      ("translate", Test_translate.suite);
      ("shred", Test_shred.suite);
      ("shred-ordered", Test_shred.ordered_suite);
      ("search", Test_search.suite);
      ("cost-engine", Test_cost_engine.suite);
      ("par", Test_par.suite);
      ("budget", Test_budget.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("updates", Test_updates.suite);
      ("beam", Test_search.beam_suite);
      ("serve", Test_serve.suite);
      ("serve-properties", Test_serve.props);
      ("integration", Test_integration.suite);
      ("calibration", Test_integration.calibration_suite);
      ("all-queries", Test_integration.all_queries_suite);
      ("properties", Test_props.suite);
      ("edge", Test_edge.suite);
      ("properties-extra", Test_props.extra);
    ]
