(* The front door's offset-carrying byte buffers: consuming is offset
   arithmetic (never a copy), the newline scan never re-examines a
   byte, reserve compacts before it grows, and a drained giant buffer
   gives its storage back. *)

open Legodb
open Test_util

let suite =
  [
    case "append, scan, consume: offsets move, bytes do not" (fun () ->
        let b = Iobuf.create 8 in
        check_bool "starts empty" true (Iobuf.is_empty b);
        Iobuf.add_string b "abc";
        check_int "live bytes" 3 (Iobuf.length b);
        check_bool "no newline yet" true (Iobuf.find_newline b = None);
        Iobuf.add_string b "\ndef";
        (* the watermark resumes where the last scan stopped, and parks
           on a found newline so re-polling is O(1) *)
        check_bool "newline found" true (Iobuf.find_newline b = Some 3);
        check_bool "found again" true (Iobuf.find_newline b = Some 3);
        check_string "sub reads the live window" "abc"
          (Iobuf.sub b ~pos:0 ~len:3);
        Iobuf.consume b 4;
        check_string "consume shifted the window" "def" (Iobuf.contents b);
        check_bool "no newline in the rest" true (Iobuf.find_newline b = None);
        Iobuf.add_string b "g\nh";
        check_bool "scan resumes past old bytes" true
          (Iobuf.find_newline b = Some 4);
        Iobuf.consume b 5;
        check_string "tail survives" "h" (Iobuf.contents b);
        Iobuf.clear b;
        check_bool "clear empties" true (Iobuf.is_empty b));
    case "steady traffic compacts in place instead of growing" (fun () ->
        let b = Iobuf.create 16 in
        for i = 0 to 9_999 do
          Iobuf.add_string b (Printf.sprintf "%06d" i);
          (* keep a small live window wandering forward forever *)
          Iobuf.consume b (min 6 (Iobuf.length b))
        done;
        check_bool "capacity stays bounded" true (Iobuf.capacity b <= 64));
    case "a drained giant buffer gives its storage back" (fun () ->
        let b = Iobuf.create 64 in
        Iobuf.add_string b (String.make (2 * 1024 * 1024) 'x');
        check_bool "grew for the payload" true
          (Iobuf.capacity b >= 2 * 1024 * 1024);
        Iobuf.consume b (Iobuf.length b);
        check_bool "shrank once drained" true
          (Iobuf.capacity b < 1024 * 1024));
    case "interleaved adds and consumes match a string reference" (fun () ->
        let b = Iobuf.create 4 in
        let reference = ref "" in
        let rng = Random.State.make [| 42 |] in
        for i = 0 to 999 do
          let chunk =
            String.init
              (1 + Random.State.int rng 13)
              (fun j -> Char.chr (65 + ((i + j) mod 26)))
          in
          Iobuf.add_string b chunk;
          reference := !reference ^ chunk;
          let k = Random.State.int rng (Iobuf.length b + 1) in
          Iobuf.consume b k;
          reference := String.sub !reference k (String.length !reference - k);
          if i mod 97 = 0 then
            check_string "windows agree" !reference (Iobuf.contents b)
        done;
        check_string "final windows agree" !reference (Iobuf.contents b));
    case "sub and consume reject ranges outside the live window" (fun () ->
        let b = Iobuf.create 8 in
        Iobuf.add_string b "abcd";
        (match Iobuf.sub b ~pos:2 ~len:3 with
        | _ -> Alcotest.fail "sub beyond the window must raise"
        | exception Invalid_argument _ -> ());
        (match Iobuf.consume b 5 with
        | () -> Alcotest.fail "consume beyond the window must raise"
        | exception Invalid_argument _ -> ());
        check_string "buffer unharmed" "abcd" (Iobuf.contents b));
    case "write_to honors max and preserves the tail; read_from refills"
      (fun () ->
        let r, w = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
          (fun () ->
            let src = Iobuf.of_string "hello, iobuf world" in
            let n = Iobuf.write_to ~max:5 src w in
            check_int "short write injected" 5 n;
            check_string "unsent tail preserved bit-exactly" ", iobuf world"
              (Iobuf.contents src);
            ignore (Iobuf.write_to src w);
            check_bool "source drained" true (Iobuf.is_empty src);
            let dst = Iobuf.create 4 in
            let seen = Buffer.create 32 in
            while Buffer.length seen < 18 do
              ignore (Iobuf.read_from ~chunk:7 dst r);
              Buffer.add_string seen (Iobuf.contents dst);
              Iobuf.consume dst (Iobuf.length dst)
            done;
            check_string "round-trip through the pipe" "hello, iobuf world"
              (Buffer.contents seen)));
  ]
