open Legodb
open Test_util

let m_inlined = lazy (mapping_of (Init.all_inlined (Lazy.force annotated_imdb)))
let m_outlined = lazy (mapping_of (Init.all_outlined (Lazy.force annotated_imdb)))

let tables_of (b : Logical.block) =
  List.map (fun (r : Logical.relation) -> r.Logical.table) b.Logical.relations

let suite =
  [
    case "Q1: one block, filter and projection" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.q 1) in
        match q.Logical.blocks with
        | [ b ] ->
            check_bool "show table used" true (List.mem "Show" (tables_of b));
            check_int "three output columns" 3 (List.length b.Logical.out);
            check_bool "title filter" true
              (List.exists
                 (fun (p : Logical.pred) ->
                   snd p.Logical.lhs = "title"
                   && p.Logical.rhs = Logical.O_const (Rtype.V_string "c1"))
                 b.Logical.preds)
        | bs -> Alcotest.failf "expected one block, got %d" (List.length bs));
    case "Q1 on all-outlined joins the scalar tables" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_outlined) (Imdb.Queries.q 1) in
        match q.Logical.blocks with
        | [ b ] ->
            List.iter
              (fun t -> check_bool t true (List.mem t (tables_of b)))
              [ "Show"; "Title"; "Year"; "Type" ]
        | _ -> Alcotest.fail "expected one block");
    case "Q16 publish decomposes into outer union" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.q 16) in
        (* main block (Show columns) + Aka + Reviews + Episodes *)
        check_int "four blocks" 4 (List.length q.Logical.blocks);
        let main = List.hd q.Logical.blocks in
        check_bool "show columns projected" true
          (List.exists (fun (_, c) -> c = "title") main.Logical.out));
    case "Q19 publish keeps the selection in every block" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.q 19) in
        List.iter
          (fun (b : Logical.block) ->
            check_bool "title filter present" true
              (List.exists
                 (fun (p : Logical.pred) -> snd p.Logical.lhs = "title")
                 b.Logical.preds))
          q.Logical.blocks);
    case "Q7 nested FLWR becomes an extra block" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.q 7) in
        match q.Logical.blocks with
        | [ main; nested ] ->
            check_bool "main has no episodes" false
              (List.mem "Episodes" (tables_of main));
            check_bool "nested joins episodes" true
              (List.mem "Episodes" (tables_of nested));
            check_bool "nested has guest filter" true
              (List.exists
                 (fun (p : Logical.pred) -> snd p.Logical.lhs = "guest_director")
                 nested.Logical.preds)
        | bs -> Alcotest.failf "expected two blocks, got %d" (List.length bs));
    case "Q12 self-join uses distinct aliases" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.q 12) in
        match q.Logical.blocks with
        | [ b ] ->
            let aliases = List.map (fun (r : Logical.relation) -> r.Logical.alias) b.Logical.relations in
            check_int "unique aliases" (List.length aliases)
              (List.length (List.sort_uniq String.compare aliases));
            List.iter
              (fun t -> check_bool t true (List.mem t (tables_of b)))
              [ "Actor"; "Played"; "Director"; "Directed" ]
        | _ -> Alcotest.fail "expected one block");
    case "fk join predicates generated along chains" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.q 12) in
        let b = List.hd q.Logical.blocks in
        check_bool "played->actor join" true
          (List.exists
             (fun (p : Logical.pred) ->
               snd p.Logical.lhs = "parent_Actor"
               || (match p.Logical.rhs with
                  | Logical.O_col (_, c) -> c = "parent_Actor"
                  | _ -> false))
             b.Logical.preds));
    case "wildcard step becomes a tag predicate" (fun () ->
        let q = Xq_translate.translate (Lazy.force m_inlined) (Imdb.Queries.fig5 1) in
        let b = List.hd q.Logical.blocks in
        check_bool "tilde = nyt" true
          (List.exists
             (fun (p : Logical.pred) ->
               snd p.Logical.lhs = "tilde"
               && p.Logical.rhs = Logical.O_const (Rtype.V_string "nyt"))
             b.Logical.preds);
        check_bool "value projected" true
          (List.exists (fun (_, c) -> c = "reviews") b.Logical.out));
    case "partitioned schema yields a union of blocks" (fun () ->
        let s2 = Annotate.schema Pathstat.empty Imdb.Schema.section2 in
        let loc =
          match
            List.find_opt
              (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
              (Xtype.locations (Xschema.find s2 "Show"))
          with
          | Some (l, _) -> l
          | None -> Alcotest.fail "no choice"
        in
        let m = mapping_of (Rewrite.distribute_union s2 ~tname:"Show" ~loc) in
        let q =
          Xq_translate.translate m
            (Xq_parse.parse ~name:"titles"
               "FOR $v in imdb/show WHERE $v/title = c1 RETURN $v/title")
        in
        check_int "two partition blocks" 2 (List.length q.Logical.blocks));
    case "predicate on a missing partition field kills the block" (fun () ->
        let s2 = Annotate.schema Pathstat.empty Imdb.Schema.section2 in
        let loc =
          match
            List.find_opt
              (fun (_, t) -> match t with Xtype.Choice _ -> true | _ -> false)
              (Xtype.locations (Xschema.find s2 "Show"))
          with
          | Some (l, _) -> l
          | None -> Alcotest.fail "no choice"
        in
        let m = mapping_of (Rewrite.distribute_union s2 ~tname:"Show" ~loc) in
        let q =
          Xq_translate.translate m
            (Xq_parse.parse ~name:"movies"
               "FOR $v in imdb/show WHERE $v/box_office = 5 RETURN $v/title")
        in
        (* only the movie partition can satisfy the predicate *)
        check_int "one block" 1 (List.length q.Logical.blocks));
    case "missing return path is omitted, block survives" (fun () ->
        let m = Lazy.force m_inlined in
        let q =
          Xq_translate.translate m
            (Xq_parse.parse ~name:"mixed"
               "FOR $v in imdb/show RETURN $v/title, $v/nonexistent")
        in
        match q.Logical.blocks with
        | [ b ] -> check_int "only title" 1 (List.length b.Logical.out)
        | _ -> Alcotest.fail "expected one block");
    case "unknown binding raises Untranslatable" (fun () ->
        let m = Lazy.force m_inlined in
        match
          Xq_translate.translate m
            (Xq_parse.parse ~name:"bad" "FOR $v in imdb/nothing RETURN $v")
        with
        | _ -> Alcotest.fail "expected Untranslatable"
        | exception Xq_translate.Untranslatable _ -> ());
    case "equality_columns collects filtered columns" (fun () ->
        let m = Lazy.force m_inlined in
        let q1 = Xq_translate.translate m (Imdb.Queries.q 1) in
        let q8 = Xq_translate.translate m (Imdb.Queries.q 8) in
        let cols = Xq_translate.equality_columns [ q1; q8 ] in
        check_bool "show title" true (List.mem ("Show", "title") cols);
        check_bool "actor name" true (List.mem ("Actor", "name") cols));
    case "whole workload translates on three configurations" (fun () ->
        List.iter
          (fun m ->
            List.iter
              (fun q ->
                let lq = Xq_translate.translate m q in
                check_bool (q.Xq_ast.name ^ " nonempty") true
                  (lq.Logical.blocks <> []);
                List.iter
                  (fun b ->
                    match Logical.block_wellformed m.Mapping.catalog b with
                    | Ok () -> ()
                    | Error es ->
                        Alcotest.failf "%s: %s" q.Xq_ast.name
                          (String.concat "; " es))
                  lq.Logical.blocks)
              Imdb.Queries.all)
          [
            Lazy.force m_inlined;
            Lazy.force m_outlined;
            mapping_of (Init.normalize (Lazy.force annotated_imdb));
          ]);
    case "generated SQL mentions every block" (fun () ->
        let m = Lazy.force m_inlined in
        let q = Xq_translate.translate m (Imdb.Queries.q 16) in
        let stmts = Logical.query_to_sql q in
        check_int "stmt per block" (List.length q.Logical.blocks) (List.length stmts));
    case "touched tables: lookups name their access path" (fun () ->
        let m = Lazy.force m_inlined in
        let touched n =
          let _, tabs = Xq_translate.translate_with_tables m (Imdb.Queries.q n) in
          List.sort_uniq compare tabs
        in
        Alcotest.(check (list string)) "Q1" [ "IMDB"; "Show" ] (touched 1);
        Alcotest.(check (list string)) "Q8" [ "Actor"; "IMDB" ] (touched 8);
        Alcotest.(check (list string)) "Q13"
          [ "Actor"; "Aka"; "Directed"; "Director"; "IMDB"; "Played"; "Show" ]
          (touched 13);
        Alcotest.(check (list string)) "Q16"
          [ "Aka"; "Episodes"; "IMDB"; "Reviews"; "Show" ]
          (touched 16));
    case "touched tables: updates name the written subtree" (fun () ->
        let m = Lazy.force m_inlined in
        let ins = Xq_parse.parse_update ~name:"ins" "INSERT imdb/actor" in
        let _, tabs = Xq_translate.translate_update_with_tables m ins in
        Alcotest.(check (list string)) "INSERT imdb/actor"
          [ "Actor"; "Award"; "Played" ]
          (List.sort_uniq compare tabs));
    case "touched tables agree with the blocks' relations" (fun () ->
        List.iter
          (fun m ->
            List.iter
              (fun q ->
                match Xq_translate.translate_with_tables m q with
                | lq, tabs ->
                    List.iter
                      (fun b ->
                        List.iter
                          (fun t -> check_bool t true (List.mem t tabs))
                          (tables_of b))
                      lq.Logical.blocks
                | exception Xq_translate.Untranslatable _ -> ())
              Imdb.Queries.all)
          [ Lazy.force m_inlined; Lazy.force m_outlined ]);
    (* error paths: each Untranslatable carries a message naming the
       problem, so the search's failure records (and the CLI's one-line
       errors) say something actionable *)
    case "unbound variable is untranslatable with the variable named"
      (fun () ->
        let q =
          {
            Xq_ast.name = "bad";
            body =
              {
                Xq_ast.bindings = [ ("v", Xq_ast.Doc [ "imdb"; "show" ]) ];
                where = [];
                return = [ Xq_ast.R_path ("w", [ "title" ]) ];
              };
          }
        in
        match Xq_translate.translate (Lazy.force m_inlined) q with
        | _ -> Alcotest.fail "expected Untranslatable"
        | exception Xq_translate.Untranslatable msg ->
            check_bool "names the variable" true
              (contains msg "unbound variable $w"));
    case "empty document path is untranslatable" (fun () ->
        let q =
          {
            Xq_ast.name = "bad";
            body =
              {
                Xq_ast.bindings = [ ("v", Xq_ast.Doc []) ];
                where = [];
                return = [ Xq_ast.R_var "v" ];
              };
          }
        in
        match Xq_translate.translate (Lazy.force m_inlined) q with
        | _ -> Alcotest.fail "expected Untranslatable"
        | exception Xq_translate.Untranslatable msg ->
            check_bool "says the path is empty" true
              (contains msg "empty document path"));
    case "insert into a scalar has no storage target" (fun () ->
        let u =
          Xq_parse.parse_update ~name:"bad-ins" "INSERT imdb/show/title"
        in
        match Xq_translate.translate_update (Lazy.force m_inlined) u with
        | _ -> Alcotest.fail "expected Untranslatable"
        | exception Xq_translate.Untranslatable msg ->
            check_bool "says there is no element target" true
              (contains msg "no element storage target"));
  ]
